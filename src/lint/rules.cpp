#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <string_view>

namespace erel::lint {

namespace {

using Tokens = std::vector<Token>;

constexpr std::array<std::string_view, 6> kKnownRules = {
    "fingerprint-coverage", "protocol-complete", "nondet-source",
    "nondet-container",     "raw-stdio",         "stat-path"};

bool known_rule(std::string_view rule) {
  return std::find(kKnownRules.begin(), kKnownRules.end(), rule) !=
         kKnownRules.end();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

// ---- token-stream navigation --------------------------------------------

/// Index of the '}' matching the '{' at `open`; tokens.size() when
/// unbalanced (truncated fixtures).
std::size_t match_brace(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is_punct("{")) ++depth;
    if (t[i].is_punct("}") && --depth == 0) return i;
  }
  return t.size();
}

std::size_t match_paren(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is_punct("(")) ++depth;
    if (t[i].is_punct(")") && --depth == 0) return i;
  }
  return t.size();
}

/// Token range (open-brace index, close-brace index) of `struct <name> {`;
/// forward declarations are skipped.
std::optional<std::pair<std::size_t, std::size_t>> struct_body(
    const SourceFile& file, const std::string& name) {
  const Tokens& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].is_ident("struct") || t[i].is_ident("class"))) continue;
    if (!t[i + 1].is_ident(name)) continue;
    // Scan past "final" / base-clause to the body or a fwd-decl ';'.
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      if (t[j].is_punct(";")) break;
      if (t[j].is_punct("{")) return std::pair{j, match_brace(t, j)};
    }
  }
  return std::nullopt;
}

/// Token range of the body of the first *definition* of function `name`
/// (call sites — ')' followed by anything but an eventual '{' — are
/// skipped).
std::optional<std::pair<std::size_t, std::size_t>> function_body(
    const SourceFile& file, const std::string& name) {
  const Tokens& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_ident(name) || !t[i + 1].is_punct("(")) continue;
    const std::size_t close_paren = match_paren(t, i + 1);
    for (std::size_t j = close_paren + 1; j < t.size(); ++j) {
      if (t[j].is_punct(";") || t[j].is_punct("=") || t[j].is_punct("(") ||
          t[j].is_punct(","))
        break;  // declaration or call, not a definition
      if (t[j].is_punct("{")) return std::pair{j, match_brace(t, j)};
    }
  }
  return std::nullopt;
}

struct Decl {
  std::string name;
  int line = 0;
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Data members of the struct body at [open, close]: statement-oriented
/// walk at brace depth 1 that skips member functions (any statement
/// containing '('), nested types, and using/static/friend declarations.
/// The member name is the identifier left of '=' / '{' when an initializer
/// is present, else the last identifier of the declaration.
std::vector<Decl> struct_members(const SourceFile& file, std::size_t open,
                                 std::size_t close) {
  const Tokens& t = file.tokens;
  std::vector<Decl> members;
  std::vector<std::size_t> stmt;
  bool has_paren = false;

  const auto first_ident_is = [&](std::initializer_list<std::string_view> kw) {
    for (const std::size_t idx : stmt) {
      if (t[idx].kind != Token::Kind::kIdent) continue;
      for (const std::string_view k : kw) {
        if (t[idx].text == k) return true;
      }
      return false;
    }
    return false;
  };
  const auto skip_keyword = [&] {
    return first_ident_is({"struct", "class", "enum", "union", "using",
                           "typedef", "static", "friend", "template",
                           "public", "private", "protected", "operator"});
  };
  const auto reset = [&] {
    stmt.clear();
    has_paren = false;
  };
  const auto record = [&](std::size_t name_idx) {
    members.push_back(Decl{t[name_idx].text, t[name_idx].line});
  };
  const auto finalize = [&] {
    if (stmt.empty() || has_paren || skip_keyword()) return reset();
    // Identifier left of the first '='; else the trailing identifier.
    std::size_t name_idx = t.size();
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      if (t[stmt[k]].is_punct("=") && k > 0 &&
          t[stmt[k - 1]].kind == Token::Kind::kIdent) {
        name_idx = stmt[k - 1];
        break;
      }
    }
    if (name_idx == t.size()) {
      for (auto it = stmt.rbegin(); it != stmt.rend(); ++it) {
        if (t[*it].kind == Token::Kind::kIdent) {
          name_idx = *it;
          break;
        }
      }
    }
    if (name_idx != t.size()) record(name_idx);
    reset();
  };

  for (std::size_t i = open + 1; i < close && i < t.size();) {
    const Token& tok = t[i];
    if (tok.is_punct("{")) {
      const std::size_t body_close = match_brace(t, i);
      if (stmt.empty() || has_paren || skip_keyword()) {
        // Member-function body / nested type: not a data member.
        reset();
      } else {
        // Brace initializer: `CacheConfig l1i{...};` — the name is the
        // identifier right before the brace.
        for (auto it = stmt.rbegin(); it != stmt.rend(); ++it) {
          if (t[*it].kind == Token::Kind::kIdent) {
            record(*it);
            break;
          }
        }
        reset();
      }
      i = body_close + 1;
      continue;
    }
    if (tok.is_punct(";")) {
      finalize();
      ++i;
      continue;
    }
    if (tok.is_punct("(")) has_paren = true;
    stmt.push_back(i);
    ++i;
  }
  return members;
}

/// Enumerators of `enum [class] <name> [: type] { ... }`.
std::optional<std::vector<Decl>> enum_members(
    const SourceFile& file, const std::string& name,
    std::pair<std::size_t, std::size_t>* range_out) {
  const Tokens& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident("enum")) continue;
    std::size_t j = i + 1;
    if (j < t.size() && (t[j].is_ident("class") || t[j].is_ident("struct")))
      ++j;
    if (j >= t.size() || !t[j].is_ident(name)) continue;
    std::size_t open = t.size();
    for (std::size_t k = j + 1; k < t.size(); ++k) {
      if (t[k].is_punct(";")) break;  // forward declaration
      if (t[k].is_punct("{")) {
        open = k;
        break;
      }
    }
    if (open == t.size()) continue;
    const std::size_t close = match_brace(t, open);
    std::vector<Decl> out;
    bool expect_name = true;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (expect_name && t[k].kind == Token::Kind::kIdent) {
        out.push_back(Decl{t[k].text, t[k].line});
        expect_name = false;
      } else if (t[k].is_punct(",")) {
        expect_name = true;
      }
    }
    if (range_out != nullptr) *range_out = {open, close};
    return out;
  }
  return std::nullopt;
}

/// Member names accessed as `<root><accessor><member>` in [from, to].
std::set<std::string> accessed_members(const SourceFile& file,
                                       std::size_t from, std::size_t to,
                                       const std::string& root,
                                       const std::string& accessor) {
  const Tokens& t = file.tokens;
  std::set<std::string> out;
  for (std::size_t i = from; i + 2 <= to && i + 2 < t.size(); ++i) {
    if (t[i].is_ident(root) && t[i + 1].is_punct(accessor) &&
        t[i + 2].kind == Token::Kind::kIdent)
      out.insert(t[i + 2].text);
  }
  return out;
}

std::set<std::string> ident_set(const SourceFile& file, std::size_t skip_from,
                                std::size_t skip_to) {
  std::set<std::string> out;
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    if (i >= skip_from && i <= skip_to) continue;
    if (file.tokens[i].kind == Token::Kind::kIdent)
      out.insert(file.tokens[i].text);
  }
  return out;
}

// ---- rule context -------------------------------------------------------

struct Context {
  const FileSet& files;
  std::vector<Finding> findings;

  const SourceFile* get(const std::string& path, std::string_view rule) {
    const auto it = files.find(path);
    if (it != files.end()) return &it->second;
    findings.push_back(Finding{path, 0, "lint-error", path,
                               std::string(rule) +
                                   ": configured file is missing from the "
                                   "scanned set"});
    return nullptr;
  }

  void add(std::string file, int line, std::string_view rule,
           std::string subject, std::string message) {
    findings.push_back(Finding{std::move(file), line, std::string(rule),
                               std::move(subject), std::move(message)});
  }
};

// ---- rule: fingerprint-coverage -----------------------------------------

void check_coverage(Context& ctx, const RuleConfig::Coverage& cov) {
  constexpr std::string_view kRule = "fingerprint-coverage";
  const SourceFile* header = ctx.get(cov.header, kRule);
  const SourceFile* impl = ctx.get(cov.impl, kRule);
  if (header == nullptr || impl == nullptr) return;

  const auto body = struct_body(*header, cov.struct_name);
  if (!body) {
    ctx.add(cov.header, 0, "lint-error", cov.struct_name,
            "struct " + cov.struct_name + " not found");
    return;
  }
  const auto fn = function_body(*impl, cov.function);
  if (!fn) {
    ctx.add(cov.impl, 0, "lint-error", cov.function,
            "serializer " + cov.function + "() not found");
    return;
  }
  const std::set<std::string> covered =
      accessed_members(*impl, fn->first, fn->second, cov.root, cov.accessor);
  for (const Decl& member :
       struct_members(*header, body->first, body->second)) {
    if (covered.count(member.name) != 0) continue;
    ctx.add(cov.header, member.line, kRule,
            cov.struct_name + "::" + member.name,
            "field '" + member.name + "' of " + cov.struct_name +
                " is not serialized by " + cov.function + "() in " +
                cov.impl +
                " — a config differing only in this field would fingerprint "
                "identically and be served a wrong cached result");
  }
}

// ---- rule: protocol-complete --------------------------------------------

void check_enum_mentions(Context& ctx, const RuleConfig::EnumMention& em) {
  constexpr std::string_view kRule = "protocol-complete";
  const SourceFile* header = ctx.get(em.header, kRule);
  if (header == nullptr) return;
  std::pair<std::size_t, std::size_t> enum_range{0, 0};
  const auto enumerators = enum_members(*header, em.enum_name, &enum_range);
  if (!enumerators) {
    ctx.add(em.header, 0, "lint-error", em.enum_name,
            "enum " + em.enum_name + " not found");
    return;
  }
  for (const std::string& mention_file : em.mention_in) {
    const SourceFile* target = ctx.get(mention_file, kRule);
    if (target == nullptr) continue;
    const bool self = mention_file == em.header;
    const std::set<std::string> idents =
        self ? ident_set(*target, enum_range.first, enum_range.second)
             : ident_set(*target, 1, 0);
    for (const Decl& e : *enumerators) {
      if (idents.count(e.name) != 0) continue;
      ctx.add(em.header, e.line, kRule, em.enum_name + "::" + e.name,
              "enumerator " + e.name + " has no handling/test site in " +
                  mention_file +
                  " — an unhandled message type fails only at runtime");
    }
  }
}

void check_codec_pairs(Context& ctx, const RuleConfig& rules) {
  constexpr std::string_view kRule = "protocol-complete";
  for (const std::string& path : rules.codec_pair_files) {
    const SourceFile* file = ctx.get(path, kRule);
    if (file == nullptr) continue;
    std::map<std::string, int> codecs;  // name -> first line
    for (const Token& tok : file->tokens) {
      if (tok.kind != Token::Kind::kIdent) continue;
      if (starts_with(tok.text, "encode_") || starts_with(tok.text, "decode_"))
        codecs.emplace(tok.text, tok.line);
    }
    for (const auto& [name, line] : codecs) {
      const bool is_encode = starts_with(name, "encode_");
      const std::string twin =
          (is_encode ? "decode_" : "encode_") + name.substr(7);
      if (codecs.count(twin) == 0) {
        ctx.add(path, line, kRule, twin,
                name + " has no matching " + twin +
                    " — a one-way codec cannot round-trip the wire format");
      }
      for (const std::string& mention_file : rules.codec_mention_in) {
        const SourceFile* target = ctx.get(mention_file, kRule);
        if (target == nullptr) continue;
        if (ident_set(*target, 1, 0).count(name) != 0) continue;
        ctx.add(path, line, kRule, name,
                "codec " + name + " is never exercised in " + mention_file);
      }
    }
  }
}

// ---- rules: nondet-source / nondet-container ----------------------------

constexpr std::array<std::string_view, 10> kBannedCalls = {
    "rand",  "srand",        "rand_r",    "drand48",  "random",
    "time",  "gettimeofday", "localtime", "gmtime",   "clock"};
constexpr std::array<std::string_view, 6> kBannedIdents = {
    "random_device", "steady_clock", "system_clock",
    "high_resolution_clock", "mt19937", "mt19937_64"};
constexpr std::array<std::string_view, 4> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

template <std::size_t N>
bool in(const std::array<std::string_view, N>& set, std::string_view s) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

void check_deterministic_tu(Context& ctx, const std::string& path) {
  const SourceFile* file = ctx.get(path, "nondet-source");
  if (file == nullptr) return;
  const Tokens& t = file->tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    const bool call = i + 1 < t.size() && t[i + 1].is_punct("(");
    if ((call && in(kBannedCalls, t[i].text)) ||
        in(kBannedIdents, t[i].text)) {
      ctx.add(path, t[i].line, "nondet-source", t[i].text,
              "'" + t[i].text +
                  "' in a deterministic translation unit — fingerprints, "
                  "canonical serialization and protocol codecs must be pure "
                  "functions of their inputs");
    }
    if (in(kUnorderedContainers, t[i].text)) {
      ctx.add(path, t[i].line, "nondet-container", t[i].text,
              "'" + t[i].text +
                  "' in a deterministic translation unit — hash-container "
                  "iteration order is stdlib-specific and must never reach "
                  "a fingerprint, wire payload or stat identity");
    }
  }
}

// ---- rule: raw-stdio ----------------------------------------------------

constexpr std::array<std::string_view, 11> kStdioIdents = {
    "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs",
    "putchar", "fputc",  "cout",    "cerr",     "clog"};

void check_raw_stdio(Context& ctx, const SourceFile& file) {
  for (const Token& tok : file.tokens) {
    if (tok.kind != Token::Kind::kIdent || !in(kStdioIdents, tok.text))
      continue;
    ctx.add(file.path, tok.line, "raw-stdio", tok.text,
            "direct '" + tok.text +
                "' in library code — route diagnostics through common/log "
                "(EREL_WARN / EREL_FATAL) so output stays atomic and "
                "grep-able");
  }
}

// ---- rule: stat-path ----------------------------------------------------

bool valid_stat_path(std::string_view path) {
  if (path.empty() || path.front() == '/' || path.back() == '/') return false;
  bool prev_slash = false;
  for (const char c : path) {
    if (c == '/') {
      if (prev_slash) return false;
      prev_slash = true;
      continue;
    }
    prev_slash = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

constexpr std::array<std::string_view, 4> kRegistryCalls = {
    "counter", "accum", "distribution", "channel"};

struct StatSite {
  std::string path;  // the literal
  std::string file;
  int line = 0;
};

void collect_stat_sites(const SourceFile& file, std::vector<StatSite>& out) {
  const Tokens& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent) continue;
    // Direct registration with a literal: registry.counter("a/b").
    if (in(kRegistryCalls, t[i].text) && i + 2 < t.size() &&
        t[i + 1].is_punct("(") &&
        t[i + 2].kind == Token::Kind::kString) {
      out.push_back(StatSite{t[i + 2].text, file.path, t[i + 2].line});
      continue;
    }
    // Path constant: `constexpr std::string_view kStatX = "a/b";` (also
    // arrays of leaves). Constants outside the kStat/kChannel prefixes
    // count only when the literal contains '/', so unrelated k-constants
    // never trip the rule.
    if (t[i].text == "string_view" && i + 1 < t.size() &&
        t[i + 1].kind == Token::Kind::kIdent && t[i + 1].text.front() == 'k') {
      const std::string& name = t[i + 1].text;
      const bool stat_named =
          starts_with(name, "kStat") || starts_with(name, "kChannel");
      for (std::size_t j = i + 2; j < t.size() && j < i + 64; ++j) {
        if (t[j].is_punct(";")) break;
        if (t[j].kind != Token::Kind::kString) continue;
        if (stat_named ||
            t[j].text.find('/') != std::string::npos)
          out.push_back(StatSite{t[j].text, file.path, t[j].line});
      }
    }
  }
}

void check_stat_paths(Context& ctx, const std::vector<StatSite>& sites) {
  std::map<std::string, const StatSite*> defined;
  for (const StatSite& site : sites) {
    if (!valid_stat_path(site.path)) {
      ctx.add(site.file, site.line, "stat-path", site.path,
              "stat path \"" + site.path +
                  "\" violates the naming convention (lowercase "
                  "[a-z0-9_] components, '/'-separated)");
    }
    const auto [it, inserted] = defined.emplace(site.path, &site);
    if (!inserted) {
      ctx.add(site.file, site.line, "stat-path", site.path,
              "stat path \"" + site.path + "\" already defined at " +
                  it->second->file + ":" + std::to_string(it->second->line) +
                  " — two subsystems would silently share one metric");
    }
  }
}

// ---- exemptions ---------------------------------------------------------

struct InlineAllow {
  std::string rule;
  int line = 0;
};

/// Extracts inline directives from a file's comments: the marker, then
/// allow(rule-name), then a colon and a free-text justification (grammar
/// spelled out in docs/lint.md — not here, or this very comment would
/// parse as a directive). A directive with an unknown rule or an empty
/// justification is itself a finding.
std::vector<InlineAllow> inline_allows(const SourceFile& file,
                                       std::vector<Finding>& findings) {
  std::vector<InlineAllow> out;
  constexpr std::string_view kMarker = "erel-lint:";
  for (const Comment& comment : file.comments) {
    std::size_t pos = comment.text.find(kMarker);
    if (pos == std::string::npos) continue;
    std::string_view rest =
        trim(std::string_view(comment.text).substr(pos + kMarker.size()));
    const auto bad = [&](const std::string& why) {
      findings.push_back(Finding{file.path, comment.line, "bad-exemption",
                                 std::string(kMarker), why});
    };
    if (!starts_with(rest, "allow(")) {
      bad("malformed erel-lint directive (expected allow(<rule>): <reason>)");
      continue;
    }
    rest.remove_prefix(6);
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      bad("unterminated allow(<rule>) directive");
      continue;
    }
    const std::string rule{trim(rest.substr(0, close))};
    std::string_view reason = trim(rest.substr(close + 1));
    if (starts_with(reason, ":")) reason = trim(reason.substr(1));
    if (!known_rule(rule)) {
      bad("allow() names unknown rule '" + rule + "'");
      continue;
    }
    if (reason.empty()) {
      bad("allow(" + rule +
          ") carries no justification — every exemption must say why");
      continue;
    }
    out.push_back(InlineAllow{rule, comment.line});
  }
  return out;
}

}  // namespace

// ---- allowlist ----------------------------------------------------------

std::vector<AllowEntry> parse_allowlist(const std::string& path,
                                        std::string_view text,
                                        std::vector<Finding>& findings) {
  std::vector<AllowEntry> entries;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    const auto bad = [&](const std::string& why) {
      findings.push_back(
          Finding{path, line_no, "bad-exemption", std::string(line), why});
    };
    const std::size_t sep = line.find(" -- ");
    if (sep == std::string_view::npos) {
      bad("allowlist line has no ' -- <justification>' suffix");
      continue;
    }
    const std::string_view head = trim(line.substr(0, sep));
    const std::string_view reason = trim(line.substr(sep + 4));
    const std::size_t space = head.find(' ');
    if (space == std::string_view::npos || reason.empty()) {
      bad("allowlist line must be '<rule> <subject> -- <justification>'");
      continue;
    }
    const std::string rule{head.substr(0, space)};
    const std::string subject{trim(head.substr(space + 1))};
    if (!known_rule(rule)) {
      bad("allowlist names unknown rule '" + rule + "'");
      continue;
    }
    entries.push_back(
        AllowEntry{rule, subject, std::string(reason), line_no});
  }
  return entries;
}

// ---- orchestration ------------------------------------------------------

std::vector<Finding> run_rules(const FileSet& files, const RuleConfig& rules,
                               const std::vector<AllowEntry>& allows,
                               const std::string& allowlist_path) {
  Context ctx{files, {}};

  for (const RuleConfig::Coverage& cov : rules.coverage)
    check_coverage(ctx, cov);
  for (const RuleConfig::EnumMention& em : rules.enums)
    check_enum_mentions(ctx, em);
  check_codec_pairs(ctx, rules);
  for (const std::string& path : rules.deterministic_tus)
    check_deterministic_tu(ctx, path);

  std::vector<StatSite> stat_sites;
  for (const std::string& path : rules.library_files) {
    const auto it = files.find(path);
    if (it == files.end()) continue;  // listed but unreadable: already fatal
    check_raw_stdio(ctx, it->second);
    collect_stat_sites(it->second, stat_sites);
  }
  check_stat_paths(ctx, stat_sites);

  // Inline directives: collect (and validate) across every scanned file.
  std::map<std::string, std::vector<InlineAllow>> inline_by_file;
  for (const auto& [path, file] : files)
    inline_by_file[path] = inline_allows(file, ctx.findings);

  // Filter findings through both exemption mechanisms. Meta findings
  // (bad-exemption, stale-allow, lint-error) are never suppressible.
  std::vector<bool> allow_used(allows.size(), false);
  std::vector<Finding> kept;
  for (Finding& f : ctx.findings) {
    const bool meta = !known_rule(f.rule);
    bool suppressed = false;
    if (!meta) {
      if (const auto it = inline_by_file.find(f.file);
          it != inline_by_file.end()) {
        for (const InlineAllow& a : it->second) {
          if (a.rule == f.rule && (a.line == f.line || a.line == f.line - 1)) {
            suppressed = true;
            break;
          }
        }
      }
      for (std::size_t i = 0; i < allows.size() && !suppressed; ++i) {
        const AllowEntry& a = allows[i];
        if (a.rule == f.rule &&
            (a.subject == f.subject || a.subject == f.file)) {
          suppressed = true;
          allow_used[i] = true;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  for (std::size_t i = 0; i < allows.size(); ++i) {
    if (allow_used[i]) continue;
    kept.push_back(Finding{
        allowlist_path, allows[i].line, "stale-allow",
        allows[i].rule + " " + allows[i].subject,
        "allowlist entry matches no finding — delete it (or the invariant "
        "it excuses has silently come back into force)"});
  }

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.subject, a.message) <
           std::tie(b.file, b.line, b.rule, b.subject, b.message);
  });
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file;
    out += ':';
    out += std::to_string(f.line);
    out += ": [";
    out += f.rule;
    out += "] ";
    out += f.message;
    out += '\n';
  }
  return out;
}

}  // namespace erel::lint
