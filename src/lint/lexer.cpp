#include "lint/lexer.hpp"

#include <cctype>

namespace erel::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the rules care to see as one token. Only
/// "::" and "->" matter (member-access and scope adjacency checks);
/// everything else can split into single characters without changing any
/// rule's behavior.
bool two_char_punct(char a, char b) {
  return (a == ':' && b == ':') || (a == '-' && b == '>');
}

class Scanner {
 public:
  Scanner(std::string path, std::string_view src) : src_(src) {
    out_.path = std::move(path);
  }

  SourceFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        skip_preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  void push(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  /// A preprocessor directive runs to end of line, honoring backslash
  /// continuations; its body is not tokenized (includes and macros are out
  /// of every rule's scope), but comments inside it still terminate it
  /// correctly enough for line accounting.
  void skip_preprocessor() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        return;
      }
      ++pos_;
    }
  }

  void line_comment() {
    const int start = line_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        Comment{std::string(src_.substr(begin, pos_ - begin)), start});
  }

  void block_comment() {
    const int start = line_;
    pos_ += 2;
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    out_.comments.push_back(
        Comment{std::string(src_.substr(begin, end - begin)), start});
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(begin, pos_ - begin));
    // Raw string literal: R"delim( ... )delim".
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
         text == "LR")) {
      raw_string();
      return;
    }
    // Encoding-prefixed ordinary literal: u8"...", L"...", etc.
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      string_literal();
      return;
    }
    push(Token::Kind::kIdent, std::move(text), line_);
  }

  void number() {
    const int start = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    push(Token::Kind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         start);
  }

  void string_literal() {
    const int start = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text += c;
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        break;
      }
      if (c == '\n') ++line_;  // invalid C++, but keep line numbers sane
      text += c;
      ++pos_;
    }
    push(Token::Kind::kString, std::move(text), start);
  }

  void raw_string() {
    const int start = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string close = ")" + delim + "\"";
    const std::size_t begin = pos_;
    const std::size_t end = src_.find(close, pos_);
    std::size_t stop = end == std::string::npos ? src_.size() : end;
    for (std::size_t i = begin; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    push(Token::Kind::kString, std::string(src_.substr(begin, stop - begin)),
         start);
    pos_ = end == std::string::npos ? src_.size() : end + close.size();
  }

  void char_literal() {
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '\'') break;
    }
    // Char literals never matter to a rule; no token emitted.
  }

  void punct() {
    if (pos_ + 1 < src_.size() && two_char_punct(src_[pos_], src_[pos_ + 1])) {
      push(Token::Kind::kPunct, std::string(src_.substr(pos_, 2)), line_);
      pos_ += 2;
      return;
    }
    push(Token::Kind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  SourceFile out_;
};

}  // namespace

SourceFile tokenize(std::string path, std::string_view content) {
  return Scanner(std::move(path), content).run();
}

}  // namespace erel::lint
