// Binding of the generic lint rules (lint/rules.hpp) to this repository:
// which structs feed fingerprints, which enum is the wire protocol, which
// translation units must stay deterministic. Growing the system usually
// means growing THIS file: add the new struct/enum here and the linter
// starts defending it.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/rules.hpp"

namespace erel::lint {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Repo-relative '/'-separated rendering of `path` under `root`.
std::string rel_name(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

RuleConfig erel_project_rules() {
  RuleConfig rules;

  // Every struct whose fields the result-cache fingerprint must cover: the
  // top-level SimConfig/SamplingConfig plus the nested config structs the
  // canonical serializer walks through. A field added to any of these but
  // not to the serializer would make two different machines fingerprint
  // identically — the exact silent-cache-poisoning bug this rule exists
  // to catch at CI time.
  rules.coverage = {
      {"SimConfig", "src/sim/config.hpp", "src/sim/config.cpp",
       "canonical_fields", "config", "."},
      {"SamplingConfig", "src/sim/sampling.hpp", "src/sim/sampling.cpp",
       "append_canonical_fields", "sampling", "."},
      {"FetchConfig", "src/pipeline/fetch.hpp", "src/sim/config.cpp",
       "canonical_fields", "fetch", "."},
      {"FuConfig", "src/pipeline/fu_pool.hpp", "src/sim/config.cpp",
       "canonical_fields", "fus", "."},
      {"HierarchyConfig", "src/mem/hierarchy.hpp", "src/sim/config.cpp",
       "canonical_fields", "memory", "."},
      {"CacheConfig", "src/mem/cache.hpp", "src/sim/config.cpp",
       "canonical_fields", "cache", "->"},
  };

  // Wire-protocol completeness: every message type must be handled (or
  // explicitly named) in the codec translation unit and exercised by the
  // protocol tests; encode/decode come in pairs.
  rules.enums = {
      {"MsgType",
       "src/service/protocol.hpp",
       {"src/service/protocol.cpp", "tests/test_net.cpp"}},
  };
  rules.codec_pair_files = {"src/service/protocol.hpp"};
  rules.codec_mention_in = {"tests/test_net.cpp"};

  // Translation units whose output feeds fingerprints, the canonical wire
  // format, or stat identity. Randomness, wall-clock reads and
  // hash-container iteration are banned here; splitmix64-style seeded
  // mixing (sim/sampling.cpp) is fine because it uses none of the banned
  // constructs.
  rules.deterministic_tus = {
      "src/dev/machine.cpp",          "src/dev/machine.hpp",
      "src/harness/fingerprint.cpp", "src/harness/fingerprint.hpp",
      "src/harness/result_cache.cpp", "src/harness/results.cpp",
      "src/harness/results.hpp",      "src/service/protocol.cpp",
      "src/service/protocol.hpp",     "src/sim/config.cpp",
      "src/sim/config.hpp",           "src/sim/sampling.cpp",
      "src/sim/sampling.hpp",         "src/sim/stat_registry.cpp",
      "src/sim/stat_registry.hpp",
  };

  return rules;
}

std::optional<std::vector<Finding>> lint_repository(
    const std::string& repo_root, std::string* error) {
  const fs::path root(repo_root);
  if (!fs::exists(root / "src" / "sim" / "config.hpp")) {
    if (error != nullptr) {
      *error = repo_root +
               " does not look like the erel repo root "
               "(src/sim/config.hpp missing)";
    }
    return std::nullopt;
  }

  RuleConfig rules = erel_project_rules();

  // Library scope: every C++ file under src/, sorted for deterministic
  // reports.
  std::vector<std::string> library;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    library.push_back(rel_name(root, entry.path()));
  }
  std::sort(library.begin(), library.end());
  rules.library_files = library;

  // Files the rules read: the library plus out-of-src mention targets.
  std::vector<std::string> wanted = library;
  for (const RuleConfig::EnumMention& em : rules.enums)
    wanted.insert(wanted.end(), em.mention_in.begin(), em.mention_in.end());
  wanted.insert(wanted.end(), rules.codec_mention_in.begin(),
                rules.codec_mention_in.end());

  FileSet files;
  std::vector<Finding> pre;
  for (const std::string& rel : wanted) {
    if (files.count(rel) != 0) continue;
    if (const auto content = read_file(root / rel)) {
      files.emplace(rel, tokenize(rel, *content));
    }
    // Missing files surface as lint-error findings from the rules that
    // need them; nothing to do here.
  }

  std::vector<AllowEntry> allows;
  if (const auto allow_text = read_file(root / std::string(kAllowlistPath)))
    allows = parse_allowlist(std::string(kAllowlistPath), *allow_text, pre);

  std::vector<Finding> findings =
      run_rules(files, rules, allows, std::string(kAllowlistPath));
  findings.insert(findings.end(), pre.begin(), pre.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace erel::lint
