// erel-lint rule engine: the project-specific invariants no compiler
// checks, enforced over token streams (lint/lexer.hpp). Rule catalog and
// the exemption workflow are documented in docs/lint.md.
//
//   fingerprint-coverage   every data member of a config struct appears in
//                          its canonical_fields() serializer
//   protocol-complete      every service::MsgType enumerator has a handling
//                          site in protocol.cpp and a mention in test_net;
//                          encode_X/decode_X come in pairs, each tested
//   nondet-source          no randomness / wall-clock reads in the
//                          deterministic (fingerprint/serialization/stat/
//                          protocol) translation units
//   nondet-container       no unordered containers in those units
//                          (iteration order is stdlib-specific)
//   raw-stdio              library code never prints directly; it routes
//                          through common/log (EREL_WARN / EREL_FATAL)
//   stat-path              StatRegistry path literals are lowercase,
//                          '/'-separated and duplicate-free
//
// Two exemption mechanisms, both requiring a written justification:
//   inline     code line (or the line above it) carries a comment directive
//              naming the rule and the reason
//   allowlist  a checked-in file of `<rule> <subject> -- <reason>` lines
//              (tools/erel_lint.allow); stale entries are findings
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace erel::lint {

/// One rule violation (or meta-problem: bad exemption, stale allowlist
/// entry, broken lint binding). `subject` is the stable name an allowlist
/// entry matches (e.g. "SimConfig::fast_path", "MsgType::kPing", a stat
/// path, or a file path).
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string subject;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// One allowlist entry: `<rule> <subject> -- <justification>`.
struct AllowEntry {
  std::string rule;
  std::string subject;
  std::string reason;
  int line = 0;  // in the allowlist file, for stale-entry findings
};

/// Scanned sources keyed by repo-relative path.
using FileSet = std::map<std::string, SourceFile>;

/// Binds the generic rules to concrete project artifacts. The default
/// binding for this repo comes from `erel_project_rules()`; lint self-tests
/// build tiny bindings over fixture files.
struct RuleConfig {
  /// fingerprint-coverage: every data member of `struct_name` (declared in
  /// `header`) must be accessed as `<root><accessor><member>` inside the
  /// body of `function` (defined in `impl`).
  struct Coverage {
    std::string struct_name;
    std::string header;
    std::string impl;
    std::string function;
    std::string root;      // parameter/loop-variable the serializer reads
    std::string accessor;  // "." or "->"
  };
  std::vector<Coverage> coverage;

  /// protocol-complete (enum leg): every enumerator of `enum_name`
  /// (declared in `header`) must appear as a token in each `mention_in`
  /// file.
  struct EnumMention {
    std::string enum_name;
    std::string header;
    std::vector<std::string> mention_in;
  };
  std::vector<EnumMention> enums;

  /// protocol-complete (codec leg): in each `codec_pair_files` file, every
  /// `encode_X` identifier requires a matching `decode_X` and vice versa,
  /// and both must be referenced in every `codec_mention_in` file.
  std::vector<std::string> codec_pair_files;
  std::vector<std::string> codec_mention_in;

  /// nondet-source + nondet-container scope: the translation units whose
  /// behavior feeds fingerprints, canonical serialization, stat identity or
  /// the wire protocol.
  std::vector<std::string> deterministic_tus;

  /// raw-stdio + stat-path scope (normally: everything under src/).
  std::vector<std::string> library_files;
};

/// Parses allowlist text. Malformed lines (no subject, missing "--" reason)
/// become findings against `path`.
std::vector<AllowEntry> parse_allowlist(const std::string& path,
                                        std::string_view text,
                                        std::vector<Finding>& findings);

/// Runs every configured rule over `files`, applies inline directives and
/// `allows`, and returns the surviving findings plus any bad-exemption /
/// stale-allow / lint-error meta findings, sorted by (file, line, rule).
/// `allowlist_path` is only used to locate stale-entry findings.
std::vector<Finding> run_rules(const FileSet& files, const RuleConfig& rules,
                               const std::vector<AllowEntry>& allows,
                               const std::string& allowlist_path);

/// "path:line: [rule] message" lines, one per finding.
std::string format_findings(const std::vector<Finding>& findings);

// ---- project binding ----------------------------------------------------

/// The rule binding for this repository (struct/enum names, deterministic
/// translation units). `library_files` is filled by `lint_repository`.
RuleConfig erel_project_rules();

/// Relative path of the checked-in allowlist. The k-constant-with-slash
/// heuristic intentionally overreaches so real stat paths in new constants
/// are never missed; this one is a file location, hence:
// erel-lint: allow(stat-path): file location, not a StatRegistry path
inline constexpr std::string_view kAllowlistPath = "tools/erel_lint.allow";

/// Loads sources under `repo_root` (src/** plus the configured test
/// mention files and allowlist) and runs the full project lint. Returns
/// nullopt and sets `error` when `repo_root` does not look like this repo
/// (no src/sim/config.hpp).
std::optional<std::vector<Finding>> lint_repository(
    const std::string& repo_root, std::string* error);

}  // namespace erel::lint
