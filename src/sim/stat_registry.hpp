// Hierarchical statistics registry: the open observation surface of the
// simulator (Instrumentation API v2).
//
// Every metric is a named entry in a flat, '/'-separated namespace
// ("stall/ros_full", "policy/int/reuses", "channel/occupancy/fp/idle").
// Four entry kinds exist:
//
//   Counter      monotone 64-bit event counter            (merge: sum)
//   Accum        additive real accumulator (integrals)    (merge: sum)
//   Distribution count/sum/min/max of observed values     (merge: combine)
//   TimeSeries   fixed-stride channel of double samples   (merge: append)
//
// pipeline::Core owns one registry per run and registers the built-in
// counters under stable paths (see kStat* constants below); probes
// (sim/probe.hpp) may add entries of their own. The legacy sim::SimStats
// struct survives as a typed *view* materialized from a finalized registry
// (materialize_sim_stats), so closed-struct consumers keep working while
// open-ended consumers (CSV/JSON sinks, sampled merging, time-series
// exports) iterate the registry directly.
//
// Handles returned by counter()/accum()/... are stable references into the
// registry for its lifetime (std::map nodes); copying a registry copies the
// values, not the handles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace erel::core {
struct PolicyStats;
}
namespace erel::mem {
struct CacheStats;
}

namespace erel::sim {

class StatRegistry {
 public:
  /// Monotone event counter.
  struct Counter {
    std::uint64_t value = 0;

    Counter& operator++() {
      ++value;
      return *this;
    }
    Counter& operator+=(std::uint64_t delta) {
      value += delta;
      return *this;
    }
    bool operator==(const Counter&) const = default;
  };

  /// Additive real-valued accumulator (occupancy integrals, energies).
  struct Accum {
    double value = 0.0;

    Accum& operator+=(double delta) {
      value += delta;
      return *this;
    }
    bool operator==(const Accum&) const = default;
  };

  /// Running distribution of observed values.
  struct Distribution {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void observe(double v);
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    bool operator==(const Distribution&) const = default;
  };

  /// Fixed-stride time-series channel. `stride` is the x-axis step in
  /// whatever unit the producer documents (the core's built-in channels use
  /// cycles); points[k] covers [k*stride, (k+1)*stride). The final point of
  /// a run may cover a partial stride.
  struct TimeSeries {
    std::uint64_t stride = 0;
    std::vector<double> points;

    void push(double v) { points.push_back(v); }
    bool operator==(const TimeSeries&) const = default;
  };

  using Entry = std::variant<Counter, Accum, Distribution, TimeSeries>;

  StatRegistry() = default;

  // Copies and moves transfer the entries only: snapshot subscriptions are
  // bound to one live registry instance (the core's), never to merged or
  // returned copies.
  StatRegistry(const StatRegistry& other) : entries_(other.entries_) {}
  StatRegistry& operator=(const StatRegistry& other) {
    if (this != &other) entries_ = other.entries_;
    return *this;
  }
  StatRegistry(StatRegistry&& other) noexcept
      : entries_(std::move(other.entries_)) {}
  StatRegistry& operator=(StatRegistry&& other) noexcept {
    if (this != &other) entries_ = std::move(other.entries_);
    return *this;
  }

  // ---- registration / lookup (create on first use) ----
  // Re-registering an existing path with a different kind is fatal: two
  // subsystems disagreeing about a metric's type is a bug, not a merge.
  Counter& counter(std::string_view path);
  Accum& accum(std::string_view path);
  Distribution& distribution(std::string_view path);
  TimeSeries& channel(std::string_view path, std::uint64_t stride);

  // ---- const lookup (nullptr / default when missing) ----
  [[nodiscard]] const Counter* find_counter(std::string_view path) const;
  [[nodiscard]] const Accum* find_accum(std::string_view path) const;
  [[nodiscard]] const Distribution* find_distribution(
      std::string_view path) const;
  [[nodiscard]] const TimeSeries* find_channel(std::string_view path) const;

  [[nodiscard]] std::uint64_t counter_value(std::string_view path) const;
  [[nodiscard]] double accum_value(std::string_view path) const;

  /// All entries, path-sorted (deterministic iteration for sinks/tests).
  [[nodiscard]] const std::map<std::string, Entry, std::less<>>& entries()
      const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Folds `other` into this registry: counters and accums add,
  /// distributions combine, time-series append (callers merge window
  /// registries in interval order, so appended channels are deterministic).
  /// Entries missing on either side are copied / left alone; a path present
  /// on both sides with different kinds is fatal.
  void merge_from(const StatRegistry& other);

  /// Indented hierarchical dump ('/'-separated path components become
  /// nesting levels); channels render as "[n points @ stride s]".
  [[nodiscard]] std::string format_tree() const;

  // ---- mid-run snapshots (live observability) ----
  //
  // A registry is single-writer: the simulating thread mutates entries
  // through raw handles, so other threads can never read `entries_`
  // directly. Instead, the writer *publishes* consistent copies at safe
  // points (cycle boundaries — see SnapshotProbe in sim/probe.hpp) and
  // readers take the last published copy. The whole machinery is guarded by
  // an atomic subscriber count: with zero subscribers, publish_snapshot()
  // is one relaxed load and no copy is ever made, so unwatched runs pay
  // nothing. Publishing never mutates `entries_`, so a run that published
  // snapshots finalizes to exactly the same registry as one that did not
  // (pinned by tests/test_stat_registry.cpp).

  /// Registers / drops interest in mid-run snapshots. Thread-safe; may be
  /// called while the owning thread is simulating.
  void snapshot_subscribe() {
    snap_subscribers_.fetch_add(1, std::memory_order_relaxed);
  }
  void snapshot_unsubscribe() {
    snap_subscribers_.fetch_sub(1, std::memory_order_relaxed);
  }
  [[nodiscard]] bool snapshot_wanted() const {
    return snap_subscribers_.load(std::memory_order_relaxed) != 0;
  }

  /// Publishes a consistent copy of the current entries for snapshot()
  /// readers. Must be called by the thread that owns/mutates the registry,
  /// at a point where no entry is mid-update. No-op without subscribers.
  void publish_snapshot();

  /// The most recently published copy (empty registry when nothing has been
  /// published yet). Thread-safe; never blocks the publisher for longer
  /// than a pointer swap.
  [[nodiscard]] StatRegistry snapshot() const;

  bool operator==(const StatRegistry& other) const {
    return entries_ == other.entries_;
  }

 private:
  template <class Kind>
  Kind& get_or_create(std::string_view path);

  std::map<std::string, Entry, std::less<>> entries_;

  std::atomic<unsigned> snap_subscribers_{0};
  mutable std::mutex snap_mu_;
  std::shared_ptr<const StatRegistry> snap_published_;
};

// ---------------------------------------------------------------------------
// Built-in registry paths populated by pipeline::Core. The SimStats view
// (materialize_sim_stats) reads exactly these; adding a core metric means
// adding a path here, not editing a closed struct.
// ---------------------------------------------------------------------------

inline constexpr std::string_view kStatCycles = "core/cycles";
inline constexpr std::string_view kStatCommitted = "core/committed";
inline constexpr std::string_view kStatHalted = "core/halted";
inline constexpr std::string_view kStatFlushes = "core/flushes_injected";
inline constexpr std::string_view kStatIcacheStalls =
    "fetch/icache_stall_cycles";

inline constexpr std::string_view kStatCondBranches = "branch/cond_branches";
inline constexpr std::string_view kStatCondMispredicts =
    "branch/cond_mispredicts";
inline constexpr std::string_view kStatIndirectJumps = "branch/indirect_jumps";
inline constexpr std::string_view kStatIndirectMispredicts =
    "branch/indirect_mispredicts";

inline constexpr std::string_view kStatStallRos = "stall/ros_full";
inline constexpr std::string_view kStatStallLsq = "stall/lsq_full";
inline constexpr std::string_view kStatStallCheckpoints =
    "stall/checkpoints_full";
inline constexpr std::string_view kStatStallFreeList = "stall/free_list_empty";

/// Per-class prefixes: "<prefix>/<int|fp>/<leaf>".
inline constexpr std::string_view kStatPolicyPrefix = "policy";
inline constexpr std::string_view kStatRegfilePrefix = "regfile";
inline constexpr std::string_view kStatCachePrefix = "cache";

/// Fixed-stride channels recorded when SimConfig::stat_stride > 0:
///   channel/occupancy/<int|fp>/<empty|ready|idle>  avg registers per stride
///   channel/commit/committed                       commits per stride
inline constexpr std::string_view kChannelPrefix = "channel";
inline constexpr std::string_view kChannelCommits = "channel/commit/committed";

/// "int" / "fp" path component for class index 0 / 1.
[[nodiscard]] std::string_view stat_class_name(unsigned cls);

// Shared leaf-name/member tables: pipeline::Core::finish_registry publishes
// through these and materialize_sim_stats reads through them, so a metric
// cannot be registered under one name and read back under another (a typo
// would otherwise silently materialize as 0).

struct PolicyStatsField {
  std::string_view leaf;
  std::uint64_t core::PolicyStats::*member;
};
[[nodiscard]] const std::array<PolicyStatsField, 8>& policy_stats_fields();

struct CacheStatsField {
  std::string_view leaf;
  std::uint64_t mem::CacheStats::*member;
};
[[nodiscard]] const std::array<CacheStatsField, 3>& cache_stats_fields();

/// Occupancy integral leaves, ordered {empty, ready, idle}.
inline constexpr std::string_view kStatOccIntegralLeaves[3] = {
    "empty_integral", "ready_integral", "idle_integral"};

struct SimStats;

/// Materializes the closed SimStats view from a finalized registry.
/// Occupancy averages are derived as integral / cycles — exactly the
/// arithmetic the tracker used to perform, so the view is value-identical
/// to the pre-registry implementation (golden-pinned by tests).
[[nodiscard]] SimStats materialize_sim_stats(const StatRegistry& registry);

}  // namespace erel::sim
