// Functional warming (the SMARTS ingredient that makes short detailed
// windows unbiased): while the sampler fast-forwards between intervals, the
// branch predictors and cache hierarchy are updated architecturally — one
// in-order predict/train per branch, one access per fetch/load/store — so a
// detailed window resumed from a checkpoint starts with the long-lived
// microarchitectural state (2^18-entry gshare, 1 MB L2) already populated.
// Only the short-lived pipeline state (ROS, rename map, LSQ) still needs the
// per-sample detailed warm-up.
#pragma once

#include "arch/arch_state.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "mem/hierarchy.hpp"
#include "sim/config.hpp"

namespace erel::sim {

// WarmState is a plain value type: the sampler's planning pass copies it at
// every unit start, and each copy is the frozen warm microarchitectural
// state a worker thread seeds its detailed core from (see sim/sampling.cpp).
struct WarmState {
  explicit WarmState(const SimConfig& config)
      : gshare(config.ghr_bits), hierarchy(config.memory) {}

  /// Observes one architecturally-executed instruction: trains the branch
  /// predictors exactly as an in-order front end would (speculative history
  /// shift, then repair on the spot since the outcome is known) and touches
  /// the caches for the fetch and any data access.
  void observe(const arch::StepInfo& info);

  branch::Gshare gshare;
  branch::Btb btb;
  branch::Ras ras;
  mem::MemoryHierarchy hierarchy;
};

}  // namespace erel::sim
