// Functional warming (the SMARTS ingredient that makes short detailed
// windows unbiased): while the sampler fast-forwards between intervals, the
// branch predictors and cache hierarchy are updated architecturally — one
// in-order predict/train per branch, one access per fetch line/load/store —
// so a detailed window resumed from a checkpoint starts with the long-lived
// microarchitectural state (2^18-entry gshare, 1 MB L2) already populated.
// Only the short-lived pipeline state (ROS, rename map, LSQ) still needs the
// per-sample detailed warm-up.
//
// observe() is the planning pass's per-instruction hot path: it dispatches
// on StepInfo::kind (one switch, no OpInfo flag walks) and charges the
// I-cache once per fetch line rather than once per instruction — a repeated
// same-line fetch is by construction an L1I hit whose only effect is an LRU
// touch, and consecutive touches of one line cannot reorder it against any
// other line, so the warmed tags, dirty bits and relative recency (all a
// detailed window can observe) are identical to the per-instruction charge.
#pragma once

#include "arch/arch_state.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "common/bits.hpp"
#include "mem/hierarchy.hpp"
#include "sim/config.hpp"

namespace erel::sim {

// WarmState is a plain value type: the sampler's planning pass copies it at
// every unit start, and each copy is the frozen warm microarchitectural
// state a worker thread seeds its detailed core from (see sim/sampling.cpp).
struct WarmState {
  explicit WarmState(const SimConfig& config)
      : gshare(config.ghr_bits),
        hierarchy(config.memory),
        ifetch_line_shift(log2_exact(config.memory.l1i.line_bytes)) {}

  /// Observes one architecturally-executed instruction: trains the branch
  /// predictors exactly as an in-order front end would (speculative history
  /// shift, then repair on the spot since the outcome is known) and touches
  /// the caches for the fetch line and any data access.
  void observe(const arch::StepInfo& info);

  branch::Gshare gshare;
  branch::Btb btb;
  branch::Ras ras;
  mem::MemoryHierarchy hierarchy;

  unsigned ifetch_line_shift;  // log2(L1I line bytes), lines are pow2
  std::uint64_t last_ifetch_line = ~std::uint64_t{0};
};

}  // namespace erel::sim
