#include "sim/probe.hpp"

namespace erel::sim {

Probe::~Probe() = default;

void Probe::on_run_begin(const SimConfig& config, StatRegistry& registry) {
  (void)config;
  (void)registry;
}

void Probe::on_run_end(StatRegistry& registry) { (void)registry; }

void Probe::export_metrics(const SimConfig& config,
                           const StatRegistry& registry,
                           std::vector<Metric>& out) const {
  (void)config, (void)registry, (void)out;
}

}  // namespace erel::sim
