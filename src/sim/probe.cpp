#include "sim/probe.hpp"

namespace erel::sim {

Probe::~Probe() = default;

void Probe::on_run_begin(const SimConfig& config, StatRegistry& registry) {
  (void)config;
  (void)registry;
}

void Probe::on_run_end(StatRegistry& registry) { (void)registry; }

void Probe::export_metrics(const SimConfig& config,
                           const StatRegistry& registry,
                           std::vector<Metric>& out) const {
  (void)config, (void)registry, (void)out;
}

void SnapshotProbe::on_run_begin(const SimConfig& config,
                                 StatRegistry& registry) {
  (void)config;
  registry_ = &registry;
}

void SnapshotProbe::on_cycle(const CycleEvent& event) {
  if (interval_ != 0 && event.cycle % interval_ == 0 && registry_ != nullptr)
    registry_->publish_snapshot();
}

void SnapshotProbe::on_run_end(StatRegistry& registry) {
  // Final publish after finish_registry(): subscribers see the completed
  // channels even if the run ended mid-interval.
  registry.publish_snapshot();
}

}  // namespace erel::sim
