#include "sim/simulator.hpp"

#include <sstream>

namespace erel::sim {

std::string format_stats(const SimStats& stats) {
  std::ostringstream os;
  os << "cycles               " << stats.cycles << "\n";
  os << "instructions         " << stats.committed
     << (stats.halted ? " (halted)" : " (limit reached)") << "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", stats.ipc());
  os << "IPC                  " << buf << "\n";
  std::snprintf(buf, sizeof buf, "%.2f%%",
                100.0 * stats.branches.cond_accuracy());
  os << "cond branches        " << stats.branches.cond_branches
     << " (accuracy " << buf << ")\n";
  os << "indirect jumps       " << stats.branches.indirect_jumps << " ("
     << stats.branches.indirect_mispredicts << " mispredicted)\n";
  os << "dispatch stalls      ros_full=" << stats.stalls.ros_full
     << " lsq_full=" << stats.stalls.lsq_full
     << " checkpoints=" << stats.stalls.checkpoints_full
     << " free_list=" << stats.stalls.free_list_empty << "\n";
  os << "icache stall cycles  " << stats.icache_stall_cycles << "\n";
  std::snprintf(buf, sizeof buf, "%.3f%% / %.3f%% / %.3f%%",
                100.0 * stats.l1i.miss_rate(), 100.0 * stats.l1d.miss_rate(),
                100.0 * stats.l2.miss_rate());
  os << "miss rates L1I/L1D/L2  " << buf << "\n";
  if (stats.flushes_injected != 0)
    os << "injected flushes     " << stats.flushes_injected << "\n";
  for (int cls = 0; cls < 2; ++cls) {
    const auto& ps = stats.policy_stats[cls];
    const auto& occ = stats.occupancy[cls];
    os << (cls == 0 ? "int" : "fp ") << " releases         conv="
       << ps.conventional_releases << " early@LU=" << ps.early_commit_releases
       << " immediate=" << ps.immediate_releases << " reuse=" << ps.reuses
       << " branch-confirm=" << ps.branch_confirm_releases
       << " fallback=" << ps.fallback_conventional
       << " stale-suppressed=" << ps.stale_suppressed << "\n";
    std::snprintf(buf, sizeof buf, "empty=%.1f ready=%.1f idle=%.1f",
                  occ.avg_empty, occ.avg_ready, occ.avg_idle);
    os << (cls == 0 ? "int" : "fp ") << " occupancy        " << buf << "\n";
  }
  return os.str();
}

std::string describe_config(const SimConfig& config) {
  std::ostringstream os;
  os << "Fetch width          " << config.fetch.width
     << " instructions (up to " << config.fetch.max_blocks_per_cycle
     << " taken branches)\n";
  os << "L1 I-cache           " << config.memory.l1i.size_bytes / 1024
     << " KB, " << config.memory.l1i.associativity << "-way, "
     << config.memory.l1i.line_bytes << " B lines, "
     << config.memory.l1i.hit_latency << "-cycle hit\n";
  os << "Branch prediction    " << config.ghr_bits
     << "-bit gshare, speculative updates, up to "
     << config.max_pending_branches << " pending branches\n";
  os << "ROS size             " << config.ros_size << " entries\n";
  os << "Functional units     " << config.fus.int_alu << " simple int (1); "
     << config.fus.int_mul << " int mult (7); " << config.fus.fp_alu
     << " simple FP (4); " << config.fus.fp_mul << " FP mult (4); "
     << config.fus.fp_div << " FP div (16); " << config.fus.ld_st
     << " load/store\n";
  os << "Load/Store queue     " << config.lsq_size
     << " entries with store-load forwarding\n";
  os << "Issue mechanism      out-of-order issue, width " << config.issue_width
     << "; loads execute when all prior store addresses are known\n";
  os << "Physical registers   " << config.phys_int << " int / "
     << config.phys_fp << " FP (" << isa::kNumLogicalRegs << " int / "
     << isa::kNumLogicalRegs << " FP logical)\n";
  os << "L1 D-cache           " << config.memory.l1d.size_bytes / 1024
     << " KB, " << config.memory.l1d.associativity << "-way, "
     << config.memory.l1d.line_bytes << " B lines, "
     << config.memory.l1d.hit_latency << "-cycle hit\n";
  os << "L2 unified cache     " << config.memory.l2.size_bytes / 1024
     << " KB, " << config.memory.l2.associativity << "-way, "
     << config.memory.l2.line_bytes << " B lines, "
     << config.memory.l2.hit_latency << "-cycle hit\n";
  os << "Main memory          unbounded size, " << config.memory.memory_latency
     << "-cycle access\n";
  os << "Commit width         " << config.commit_width << " instructions\n";
  os << "Release policy       " << core::policy_name(config.policy) << "\n";
  return os.str();
}

}  // namespace erel::sim
