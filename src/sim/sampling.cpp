#include "sim/sampling.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "pipeline/core.hpp"
#include "sim/warm_state.hpp"

namespace erel::sim {

namespace {

/// splitmix64 of (seed, k): a stateless per-interval random draw, so a
/// unit's placement depends only on the seed and its interval index — not
/// on evaluation order or thread count.
std::uint64_t mix(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (k + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One planned sampling unit: everything a worker needs to run its detailed
/// window independently of every other unit.
struct SamplingUnit {
  std::uint64_t interval = 0;  // plan order, the deterministic merge key
  arch::Checkpoint ckpt;
  std::unique_ptr<const WarmState> warm;  // null when warming is off
  // False once the planning pass has stored into the code image before this
  // unit's checkpoint: its window must not execute from the shared decode
  // cache (the checkpointed code bytes differ from the static program).
  bool decoded_ok = true;
};

/// The planning pass's batched warming loop: fast-forwards the oracle to
/// `target` dynamic instructions, training predictors and caches off the
/// decoded step records (one MicroKind dispatch per instruction, I-cache
/// charged per fetch line — see sim/warm_state.hpp).
void run_warmed(arch::ArchState& master, WarmState& warm,
                std::uint64_t target) {
  while (!master.halted() && master.instructions_executed() < target)
    warm.observe(master.step());
}

/// Outcome of one detailed window.
struct UnitResult {
  SimStats window;        // warmup + measured, as simulated
  StatRegistry registry;  // the window core's full registry
  std::uint64_t measured_insts = 0;
  std::uint64_t measured_cycles = 0;
  bool degenerate = false;  // committed work but zero measured cycles
};

/// Units are measured in batches of this size when confidence-driven
/// stopping is active; the CI is re-evaluated between batches. Constant (not
/// tied to the thread count) so the measured-unit set is identical at any
/// parallelism.
constexpr std::size_t kCiBatch = 8;

/// Mean, sample stddev (n-1) and standard error of per-sample CPI — the
/// single source of the estimator the delta method maps to IPC error bars
/// (stderr_ipc = stderr_cpi / mean^2), shared by the stopping rule and the
/// final report so they can never target different quantities.
struct CpiMoments {
  double mean = 0.0;
  double stddev = 0.0;  // 0 when n < 2
  double se = 0.0;      // 0 when n < 2
};

CpiMoments cpi_moments(const std::vector<SampleRecord>& samples) {
  CpiMoments m;
  const std::size_t n = samples.size();
  if (n == 0) return m;
  double sum = 0.0;
  for (const SampleRecord& s : samples) sum += s.cpi();
  m.mean = sum / static_cast<double>(n);
  if (n < 2) return m;
  double var = 0.0;
  for (const SampleRecord& s : samples) {
    const double d = s.cpi() - m.mean;
    var += d * d;
  }
  m.stddev = std::sqrt(var / static_cast<double>(n - 1));
  m.se = m.stddev / std::sqrt(static_cast<double>(n));
  return m;
}

double ci_halfwidth(const std::vector<SampleRecord>& samples) {
  const CpiMoments cpi = cpi_moments(samples);
  if (samples.size() < 2 || cpi.mean <= 0.0)
    return std::numeric_limits<double>::infinity();
  return 1.96 * cpi.se / (cpi.mean * cpi.mean);
}

}  // namespace

std::string_view placement_name(Placement placement) {
  switch (placement) {
    case Placement::kPeriodic: return "periodic";
    case Placement::kRandom: return "random";
    case Placement::kStratified: return "stratified";
  }
  EREL_FATAL("invalid Placement ", static_cast<int>(placement));
}

Placement parse_placement(std::string_view name) {
  if (name == "periodic") return Placement::kPeriodic;
  if (name == "random") return Placement::kRandom;
  if (name == "stratified") return Placement::kStratified;
  EREL_FATAL("unknown placement mode '", name,
             "' (expected periodic|random|stratified)");
}

void append_canonical_fields(const SamplingConfig& sampling, std::string& out) {
  const auto field = [&out](std::string_view name, std::uint64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  };
  field("sampling.period", sampling.period);
  field("sampling.warmup", sampling.warmup);
  field("sampling.detail", sampling.detail);
  field("sampling.max_samples", sampling.max_samples);
  field("sampling.functional_warming", sampling.functional_warming ? 1 : 0);
  field("sampling.placement", static_cast<std::uint64_t>(sampling.placement));
  field("sampling.seed", sampling.seed);
  // target_ci is a double; print the exact bit pattern rather than a
  // rounded decimal so equal configs always hash equally.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%a", sampling.target_ci);
  out += "sampling.target_ci=";
  out += buf;
  out += '\n';
}

std::optional<SamplingConfig> sampling_from_canonical_fields(
    const std::map<std::string, std::string, std::less<>>& fields) {
  SamplingConfig s;
  std::size_t consumed = 0;
  bool ok = true;
  const auto get_u64 = [&](std::string_view name) -> std::uint64_t {
    const auto it = fields.find(name);
    if (it == fields.end() || it->second.empty() ||
        !std::isdigit(static_cast<unsigned char>(it->second[0]))) {
      ok = false;
      return 0;
    }
    ++consumed;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end != it->second.c_str() + it->second.size() || errno != 0) ok = false;
    return v;
  };
  s.period = get_u64("sampling.period");
  s.warmup = get_u64("sampling.warmup");
  s.detail = get_u64("sampling.detail");
  s.max_samples = get_u64("sampling.max_samples");
  const std::uint64_t warming = get_u64("sampling.functional_warming");
  if (warming > 1) ok = false;
  s.functional_warming = warming != 0;
  const std::uint64_t placement = get_u64("sampling.placement");
  if (placement > static_cast<std::uint64_t>(Placement::kStratified))
    ok = false;
  s.placement = static_cast<Placement>(placement);
  s.seed = get_u64("sampling.seed");
  // target_ci round-trips through the "%a" hexfloat rendering; strtod
  // parses it exactly.
  if (const auto it = fields.find("sampling.target_ci"); it != fields.end()) {
    ++consumed;
    char* end = nullptr;
    s.target_ci = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || end != it->second.c_str() + it->second.size())
      ok = false;
  } else {
    ok = false;
  }
  // `threads` is absent by design (wall-clock only); the daemon picks its
  // own shard count. Reject extra fields so skew fails loudly.
  if (!ok || consumed != fields.size()) return std::nullopt;
  // The SampledSimulator constructor EREL_CHECKs these; validate here so a
  // malformed request is an error reply, not a daemon abort.
  if (s.detail == 0 || s.period <= s.warmup + s.detail) return std::nullopt;
  return s;
}

SampledSimulator::SampledSimulator(SimConfig config, SamplingConfig sampling)
    : config_(std::move(config)), sampling_(sampling) {
  EREL_CHECK(sampling_.detail > 0, "sampling window must measure something");
  EREL_CHECK(sampling_.period > sampling_.warmup + sampling_.detail,
             "sampling period ", sampling_.period,
             " must exceed warmup+detail ",
             sampling_.warmup + sampling_.detail);
  EREL_CHECK(sampling_.target_ci >= 0.0, "target_ci must be non-negative");
}

SampledStats SampledSimulator::run(const arch::Program& program,
                                   const std::vector<ProbeSpec>& probes,
                                   const std::function<bool()>& cancel)
    const {
  const std::uint64_t window = sampling_.warmup + sampling_.detail;
  const std::uint64_t slack = sampling_.period - window;  // ctor: period>window

  // Start of unit k. Periodic: exactly k*period. Stratified: uniform within
  // [k*period, (k+1)*period - window], so consecutive windows can never
  // overlap. Random: previous start plus a uniform gap from
  // [window, 2*period - window] (mean period), accumulated by the caller.
  const auto unit_start = [&](std::uint64_t k,
                              std::uint64_t prev_start) -> std::uint64_t {
    switch (sampling_.placement) {
      case Placement::kPeriodic:
        return k * sampling_.period;
      case Placement::kStratified:
        return k * sampling_.period + mix(sampling_.seed, k) % (slack + 1);
      case Placement::kRandom:
        if (k == 0) return mix(sampling_.seed, 0) % (slack + 1);
        return prev_start + window + mix(sampling_.seed, k) % (2 * slack + 1);
    }
    EREL_FATAL("invalid Placement");
  };

  // --- planning pass ------------------------------------------------------
  // One functional sweep over the whole program: fast-forward (warming the
  // predictors and caches when enabled) to each unit start, capture the
  // architectural checkpoint plus a snapshot of the warm state, and keep
  // going. After this pass the exact dynamic instruction count is known and
  // every unit can be measured independently, in any order, on any thread.
  SampledStats out;
  std::vector<SamplingUnit> units;
  // One decode of the static program shared by the planning oracle and
  // every measurement window's core (each window otherwise re-decodes the
  // whole image). Null when the fast path is configured off.
  const std::shared_ptr<const arch::DecodedProgram> decoded =
      config_.fast_path
          ? std::make_shared<const arch::DecodedProgram>(program)
          : nullptr;
  // Pre-size the plan when a cap bounds it (clamped: the cap is
  // user-supplied and may far exceed what the program can yield).
  if (sampling_.max_samples != 0)
    units.reserve(std::min<std::uint64_t>(sampling_.max_samples, 4096));
  {
    arch::ArchState master(program, decoded.get());
    WarmState warm(config_);
    std::uint64_t start = 0;
    for (std::uint64_t k = 0; !master.halted(); ++k) {
      if (cancel && cancel()) break;  // partial plan; caller discards
      start = unit_start(k, start);
      if (sampling_.functional_warming) {
        run_warmed(master, warm, start);
      } else if (master.instructions_executed() < start) {
        master.run(start - master.instructions_executed());
      }
      if (master.halted()) break;
      if (sampling_.max_samples != 0 &&
          units.size() >= sampling_.max_samples) {
        // Cap reached: finish the program functionally so the total count
        // stays exact — still through the warming loop when warming is on,
        // so the warm state never develops a cold gap relative to the
        // instruction stream.
        if (sampling_.functional_warming) {
          run_warmed(master, warm, ~std::uint64_t{0});
        } else {
          master.run();
        }
        break;
      }
      SamplingUnit& unit = units.emplace_back();
      unit.interval = k;
      unit.ckpt = arch::capture(master);
      unit.decoded_ok = !master.code_dirtied();
      if (sampling_.functional_warming)
        unit.warm = std::make_unique<const WarmState>(warm);
    }
    out.total_instructions = master.instructions_executed();
    out.estimate.committed = out.total_instructions;
    out.estimate.halted = master.halted();
  }
  out.units_planned = units.size();

  // --- measurement --------------------------------------------------------
  // Each unit replays from its checkpoint through a fresh detailed core:
  // `warmup` commits prime the pipeline, then the measured span runs to
  // warmup+detail (or HALT, or a run-control limit).
  const auto run_unit = [&](const SamplingUnit& unit) -> UnitResult {
    SimConfig cfg = config_;
    cfg.max_instructions = window;
    // A unit whose checkpoint carries self-modified code must not use (or
    // rebuild) the static decode cache: force the byte-accurate engine.
    if (!unit.decoded_ok) cfg.fast_path = false;
    pipeline::Core core(cfg, program, unit.ckpt, unit.warm.get(),
                        unit.decoded_ok ? decoded : nullptr);
    const std::vector<std::unique_ptr<Probe>> instances =
        core.attach_probes(probes);
    while (!core.halted() && core.committed() < sampling_.warmup &&
           core.cycle() < cfg.max_cycles)
      core.tick();
    const std::uint64_t warm_cycles = core.cycle();
    const std::uint64_t warm_committed = core.committed();
    UnitResult r;
    r.window = core.run();
    r.registry = core.registry();
    r.measured_insts = r.window.committed - warm_committed;
    r.measured_cycles = r.window.cycles - warm_cycles;
    if (r.measured_insts > 0 && r.measured_cycles == 0) {
      // The warm-up loop ran into cfg.max_cycles: everything this window
      // committed was committed at the cycle limit, so its IPC would be
      // infinite. Keep the raw counters, drop the sample.
      r.degenerate = true;
      EREL_WARN("sampling unit at instruction ", unit.ckpt.icount,
                " hit max_cycles during warm-up (", r.measured_insts,
                " insts, 0 measured cycles): sample dropped");
    }
    return r;
  };

  // Measurement order: interval order normally; a seeded shuffle under
  // confidence-driven stopping, so every batch is an unbiased spread over
  // the whole program rather than its first intervals.
  std::vector<std::size_t> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  const bool ci_stopping = sampling_.target_ci > 0.0;
  if (ci_stopping) {
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j =
          mix(sampling_.seed ^ 0xa5a5a5a5a5a5a5a5ull, i) % i;
      std::swap(order[i - 1], order[j]);
    }
  }

  unsigned threads = sampling_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  std::optional<ThreadPool> pool;
  if (threads > 1 && units.size() > 1) pool.emplace(threads);

  std::vector<std::optional<UnitResult>> results(units.size());
  std::vector<SampleRecord> scheduled_samples;  // CI bookkeeping only
  scheduled_samples.reserve(units.size());
  std::size_t next = 0;
  while (next < order.size()) {
    if (cancel && cancel()) break;  // partial measurement; caller discards
    const std::size_t batch_end =
        ci_stopping ? std::min(next + kCiBatch, order.size()) : order.size();
    const auto measure = [&](std::size_t i) {
      results[order[i]] = run_unit(units[order[i]]);
    };
    if (pool) {
      parallel_for(*pool, batch_end - next,
                   [&](std::size_t i) { measure(next + i); });
    } else {
      for (std::size_t i = next; i < batch_end; ++i) measure(i);
    }
    for (std::size_t i = next; i < batch_end; ++i) {
      const UnitResult& r = *results[order[i]];
      if (r.measured_insts > 0 && !r.degenerate)
        scheduled_samples.push_back({units[order[i]].ckpt.icount,
                                     r.measured_insts, r.measured_cycles});
    }
    next = batch_end;
    if (ci_stopping && ci_halfwidth(scheduled_samples) <= sampling_.target_ci)
      break;
  }

  // --- deterministic merge ------------------------------------------------
  // Fold measured units back in interval order: the output is a pure
  // function of (config, program, seed), never of scheduling. Every window
  // merges its whole StatRegistry (counters sum, occupancy integrals sum,
  // channels append), so sharded and serial runs agree on every metric —
  // the SimStats `measured` view is then materialized from the merge.
  out.samples.reserve(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (!results[u]) continue;  // unscheduled (CI target met early)
    const UnitResult& r = *results[u];
    out.registry.merge_from(r.registry);
    out.detailed_instructions += r.window.committed;
    if (r.degenerate) {
      ++out.degenerate_windows;
    } else if (r.measured_insts > 0) {
      out.samples.push_back(
          {units[u].ckpt.icount, r.measured_insts, r.measured_cycles});
      out.measured_instructions += r.measured_insts;
    }
  }
  out.measured = materialize_sim_stats(out.registry);

  const std::size_t n = out.samples.size();
  if (n > 0) {
    const CpiMoments cpi = cpi_moments(out.samples);
    out.cpi_mean = cpi.mean;
    out.cpi_stddev = cpi.stddev;
    out.cpi_stderr = cpi.se;
    double ipc_sum = 0.0;
    for (const SampleRecord& s : out.samples) ipc_sum += s.ipc();
    out.ipc_mean = ipc_sum / static_cast<double>(n);
    double ipc_var = 0.0;
    for (const SampleRecord& s : out.samples) {
      const double di = s.ipc() - out.ipc_mean;
      ipc_var += di * di;
    }
    if (n > 1) {
      out.ipc_stddev = std::sqrt(ipc_var / static_cast<double>(n - 1));
      // Delta method: the error bar is centered on estimate.ipc().
      out.ipc_stderr = out.cpi_stderr / (out.cpi_mean * out.cpi_mean);
      out.ipc_ci95 = 1.96 * out.ipc_stderr;
    }
    out.estimate.cycles = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(out.total_instructions) *
                     out.cpi_mean));
  } else if (out.measured.committed > 0) {
    // Program ended inside the first warm-up window: no clean sample exists,
    // so fall back to the CPI of whatever detailed work ran rather than
    // reporting an IPC of zero.
    const double fallback_cpi = static_cast<double>(out.measured.cycles) /
                                static_cast<double>(out.measured.committed);
    out.estimate.cycles = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(out.total_instructions) * fallback_cpi));
  }
  return out;
}

std::string format_sampled_stats(const SampledStats& stats) {
  std::ostringstream os;
  char buf[128];
  os << "instructions (exact) " << stats.total_instructions << "\n";
  os << "samples              " << stats.samples.size() << " of "
     << stats.units_planned << " planned (" << stats.measured_instructions
     << " measured / " << stats.detailed_instructions
     << " detailed insts)\n";
  if (stats.degenerate_windows > 0)
    os << "degenerate windows   " << stats.degenerate_windows
       << " (dropped)\n";
  std::snprintf(buf, sizeof buf, "%.2f%%", 100.0 * stats.detail_fraction());
  os << "detail fraction      " << buf << "\n";
  if (stats.samples.size() > 1) {
    std::snprintf(buf, sizeof buf, "%.4f +/- %.4f (95%% CI), stddev %.4f",
                  stats.estimate.ipc(), stats.ipc_ci95, stats.ipc_stddev);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f (n<2: no error bars)",
                  stats.estimate.ipc());
  }
  os << "IPC estimate         " << buf << "\n";
  os << "cycles (estimated)   " << stats.estimate.cycles << "\n";
  return os.str();
}

}  // namespace erel::sim
