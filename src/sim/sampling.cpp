#include "sim/sampling.hpp"

#include <cmath>
#include <sstream>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "common/log.hpp"
#include "pipeline/core.hpp"
#include "sim/warm_state.hpp"

namespace erel::sim {

namespace {

/// Accumulates the counters of one detailed window into `total`.
void accumulate(SimStats& total, const SimStats& window) {
  total.cycles += window.cycles;
  total.committed += window.committed;
  total.branches.cond_branches += window.branches.cond_branches;
  total.branches.cond_mispredicts += window.branches.cond_mispredicts;
  total.branches.indirect_jumps += window.branches.indirect_jumps;
  total.branches.indirect_mispredicts += window.branches.indirect_mispredicts;
  total.stalls.ros_full += window.stalls.ros_full;
  total.stalls.lsq_full += window.stalls.lsq_full;
  total.stalls.checkpoints_full += window.stalls.checkpoints_full;
  total.stalls.free_list_empty += window.stalls.free_list_empty;
  total.icache_stall_cycles += window.icache_stall_cycles;
  for (unsigned c = 0; c < 2; ++c)
    total.squash_released[c] += window.squash_released[c];
  auto add_cache = [](mem::CacheStats& a, const mem::CacheStats& b) {
    a.accesses += b.accesses;
    a.misses += b.misses;
    a.writebacks += b.writebacks;
  };
  add_cache(total.l1i, window.l1i);
  add_cache(total.l1d, window.l1d);
  add_cache(total.l2, window.l2);
}

}  // namespace

SampledSimulator::SampledSimulator(SimConfig config, SamplingConfig sampling)
    : config_(std::move(config)), sampling_(sampling) {
  EREL_CHECK(sampling_.detail > 0, "sampling window must measure something");
  EREL_CHECK(sampling_.period > sampling_.warmup + sampling_.detail,
             "sampling period ", sampling_.period,
             " must exceed warmup+detail ",
             sampling_.warmup + sampling_.detail);
}

SampledStats SampledSimulator::run(const arch::Program& program) const {
  SampledStats out;
  arch::ArchState master(program);
  WarmState warm(config_);
  std::uint64_t next_start = 0;

  while (!master.halted()) {
    if (sampling_.functional_warming) {
      while (!master.halted() && master.instructions_executed() < next_start)
        warm.observe(master.step());
    } else if (master.instructions_executed() < next_start) {
      master.run(next_start - master.instructions_executed());
    }
    if (master.halted()) break;

    if (sampling_.max_samples != 0 &&
        out.samples.size() >= sampling_.max_samples) {
      master.run();  // finish functionally: exact total instruction count
      break;
    }

    const arch::Checkpoint ckpt = arch::capture(master);

    SimConfig cfg = config_;
    cfg.max_instructions = sampling_.warmup + sampling_.detail;
    cfg.trace = nullptr;  // per-window traces would interleave meaninglessly
    pipeline::Core core(cfg, program, ckpt,
                        sampling_.functional_warming ? &warm : nullptr);
    while (!core.halted() && core.committed() < sampling_.warmup &&
           core.cycle() < cfg.max_cycles)
      core.tick();
    const std::uint64_t warm_cycles = core.cycle();
    const std::uint64_t warm_committed = core.committed();
    const SimStats window = core.run();  // to warmup+detail, HALT or limits
    accumulate(out.measured, window);
    out.detailed_instructions += window.committed;

    const std::uint64_t measured_insts = window.committed - warm_committed;
    const std::uint64_t measured_cycles = window.cycles - warm_cycles;
    if (measured_insts > 0) {
      out.samples.push_back({ckpt.icount, measured_insts, measured_cycles});
      out.measured_instructions += measured_insts;
    }
    next_start += sampling_.period;
  }

  out.total_instructions = master.instructions_executed();
  out.estimate.committed = out.total_instructions;
  out.estimate.halted = master.halted();

  const std::size_t n = out.samples.size();
  if (n > 0) {
    double ipc_sum = 0.0;
    double cpi_sum = 0.0;
    for (const SampleRecord& s : out.samples) {
      ipc_sum += s.ipc();
      cpi_sum += s.cpi();
    }
    out.ipc_mean = ipc_sum / static_cast<double>(n);
    out.cpi_mean = cpi_sum / static_cast<double>(n);
    double ipc_var = 0.0;
    double cpi_var = 0.0;
    for (const SampleRecord& s : out.samples) {
      const double di = s.ipc() - out.ipc_mean;
      const double dc = s.cpi() - out.cpi_mean;
      ipc_var += di * di;
      cpi_var += dc * dc;
    }
    if (n > 1) {
      out.ipc_stddev = std::sqrt(ipc_var / static_cast<double>(n - 1));
      out.cpi_stddev = std::sqrt(cpi_var / static_cast<double>(n - 1));
      out.cpi_stderr = out.cpi_stddev / std::sqrt(static_cast<double>(n));
      // Delta method: the error bar is centered on estimate.ipc().
      out.ipc_stderr = out.cpi_stderr / (out.cpi_mean * out.cpi_mean);
      out.ipc_ci95 = 1.96 * out.ipc_stderr;
    }
    out.estimate.cycles = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(out.total_instructions) *
                     out.cpi_mean));
  } else if (out.measured.committed > 0) {
    // Program ended inside the first warm-up window: no clean sample exists,
    // so fall back to the CPI of whatever detailed work ran rather than
    // reporting an IPC of zero.
    const double fallback_cpi = static_cast<double>(out.measured.cycles) /
                                static_cast<double>(out.measured.committed);
    out.estimate.cycles = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(out.total_instructions) * fallback_cpi));
  }
  return out;
}

std::string format_sampled_stats(const SampledStats& stats) {
  std::ostringstream os;
  char buf[128];
  os << "instructions (exact) " << stats.total_instructions << "\n";
  os << "samples              " << stats.samples.size() << " ("
     << stats.measured_instructions << " measured / "
     << stats.detailed_instructions << " detailed insts)\n";
  std::snprintf(buf, sizeof buf, "%.2f%%", 100.0 * stats.detail_fraction());
  os << "detail fraction      " << buf << "\n";
  if (stats.samples.size() > 1) {
    std::snprintf(buf, sizeof buf, "%.4f +/- %.4f (95%% CI), stddev %.4f",
                  stats.estimate.ipc(), stats.ipc_ci95, stats.ipc_stddev);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f (n<2: no error bars)",
                  stats.estimate.ipc());
  }
  os << "IPC estimate         " << buf << "\n";
  os << "cycles (estimated)   " << stats.estimate.cycles << "\n";
  return os.str();
}

}  // namespace erel::sim
