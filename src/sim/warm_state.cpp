#include "sim/warm_state.hpp"

#include "dev/machine.hpp"

namespace erel::sim {

void WarmState::observe(const arch::StepInfo& info) {
  if (info.halted) return;
  const std::uint64_t line = info.pc >> ifetch_line_shift;
  if (line != last_ifetch_line) {
    hierarchy.ifetch(info.pc);
    last_ifetch_line = line;
  }

  switch (info.kind) {
    case arch::MicroKind::kLoad:
      // Device accesses are uncached in the pipeline (fixed MMIO latency,
      // no hierarchy traffic), so warming skips them the same way.
      if (!dev::Machine::is_mmio(info.mem_addr)) hierarchy.dload(info.mem_addr);
      return;
    case arch::MicroKind::kStore:
      if (!dev::Machine::is_mmio(info.mem_addr))
        hierarchy.dstore(info.mem_addr);
      return;
    case arch::MicroKind::kCondBranch: {
      const bool taken = info.next_pc != info.pc + 4;
      std::uint32_t checkpoint = 0;
      const bool predicted = gshare.predict(info.pc, &checkpoint);
      const bool mispredicted = predicted != taken;
      gshare.resolve(info.pc, checkpoint, taken, mispredicted);
      if (mispredicted) gshare.repair(checkpoint, taken);
      return;
    }
    // RAS/BTB conventions mirror FetchUnit::predict: rd==1 links (call),
    // rd==0 && rs1==1 is a return.
    case arch::MicroKind::kDirectJump:
      if (info.inst.rd == 1) ras.push(info.pc + 4);
      return;
    case arch::MicroKind::kIndirectJump: {
      const bool is_return = info.inst.rd == 0 && info.inst.rs1 == 1;
      if (is_return) ras.pop();
      btb.update(info.pc, info.next_pc);
      if (info.inst.rd == 1) ras.push(info.pc + 4);
      return;
    }
    case arch::MicroKind::kAlu:
    case arch::MicroKind::kHalt:
    case arch::MicroKind::kIllegal:
    case arch::MicroKind::kIret:  // not a predicted branch: fetch runs past
                                  // it until the commit-time flush redirects
      return;
  }
}

}  // namespace erel::sim
