#include "sim/warm_state.hpp"

namespace erel::sim {

void WarmState::observe(const arch::StepInfo& info) {
  if (info.halted) return;
  hierarchy.ifetch(info.pc);
  if (info.is_load) hierarchy.dload(info.mem_addr);
  if (info.is_store) hierarchy.dstore(info.mem_addr);

  const isa::DecodedInst& inst = info.inst;
  const std::uint64_t fallthrough = info.pc + 4;
  if (inst.is_cond_branch()) {
    const bool taken = info.next_pc != fallthrough;
    std::uint32_t checkpoint = 0;
    const bool predicted = gshare.predict(info.pc, &checkpoint);
    const bool mispredicted = predicted != taken;
    gshare.resolve(info.pc, checkpoint, taken, mispredicted);
    if (mispredicted) gshare.repair(checkpoint, taken);
    return;
  }
  // RAS/BTB conventions mirror FetchUnit::predict: rd==1 links (call),
  // rd==0 && rs1==1 is a return.
  if (inst.is_direct_jump()) {
    if (inst.rd == 1) ras.push(fallthrough);
    return;
  }
  if (inst.is_indirect_jump()) {
    const bool is_return = inst.rd == 0 && inst.rs1 == 1;
    if (is_return) ras.pop();
    btb.update(info.pc, info.next_pc);
    if (inst.rd == 1) ras.push(fallthrough);
  }
}

}  // namespace erel::sim
