// Aggregated simulation results.
#pragma once

#include <cstdint>

#include "core/release_policy.hpp"
#include "core/reg_state.hpp"
#include "mem/cache.hpp"

namespace erel::sim {

struct BranchStats {
  std::uint64_t cond_branches = 0;
  std::uint64_t cond_mispredicts = 0;
  std::uint64_t indirect_jumps = 0;
  std::uint64_t indirect_mispredicts = 0;

  [[nodiscard]] double cond_accuracy() const {
    return cond_branches == 0
               ? 1.0
               : 1.0 - static_cast<double>(cond_mispredicts) / cond_branches;
  }
};

struct DispatchStalls {
  std::uint64_t ros_full = 0;
  std::uint64_t lsq_full = 0;
  std::uint64_t checkpoints_full = 0;
  std::uint64_t free_list_empty = 0;  // the stall early release attacks
};

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  bool halted = false;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(committed) / cycles;
  }

  BranchStats branches;
  DispatchStalls stalls;
  std::uint64_t flushes_injected = 0;
  std::uint64_t icache_stall_cycles = 0;

  // Per register class (0 = int, 1 = fp).
  core::PolicyStats policy_stats[2];
  core::Occupancy occupancy[2];
  std::uint64_t squash_released[2] = {0, 0};

  mem::CacheStats l1i;
  mem::CacheStats l1d;
  mem::CacheStats l2;
};

}  // namespace erel::sim
