#include "sim/config.hpp"

namespace erel::sim {

bool config_fingerprintable(const SimConfig& config) {
  return !config.policy_factory;
}

namespace {

void field(std::string& out, std::string_view name, std::uint64_t value) {
  out += name;
  out += '=';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

void append_canonical_fields(const SimConfig& config, std::string& out) {
  field(out, "policy", static_cast<std::uint64_t>(config.policy));
  field(out, "phys_int", config.phys_int);
  field(out, "phys_fp", config.phys_fp);
  field(out, "ros_size", config.ros_size);
  field(out, "lsq_size", config.lsq_size);
  field(out, "decode_width", config.decode_width);
  field(out, "issue_width", config.issue_width);
  field(out, "commit_width", config.commit_width);
  field(out, "max_pending_branches", config.max_pending_branches);
  field(out, "ghr_bits", config.ghr_bits);
  field(out, "fetch.width", config.fetch.width);
  field(out, "fetch.max_blocks_per_cycle", config.fetch.max_blocks_per_cycle);
  field(out, "fetch.buffer_capacity", config.fetch.buffer_capacity);
  field(out, "fus.int_alu", config.fus.int_alu);
  field(out, "fus.int_mul", config.fus.int_mul);
  field(out, "fus.fp_alu", config.fus.fp_alu);
  field(out, "fus.fp_mul", config.fus.fp_mul);
  field(out, "fus.fp_div", config.fus.fp_div);
  field(out, "fus.ld_st", config.fus.ld_st);
  for (const mem::CacheConfig* cache :
       {&config.memory.l1i, &config.memory.l1d, &config.memory.l2}) {
    const std::string prefix = "memory." + cache->name + ".";
    field(out, prefix + "size_bytes", cache->size_bytes);
    field(out, prefix + "associativity", cache->associativity);
    field(out, prefix + "line_bytes", cache->line_bytes);
    field(out, prefix + "hit_latency", cache->hit_latency);
  }
  field(out, "memory.memory_latency", config.memory.memory_latency);
  field(out, "max_cycles", config.max_cycles);
  field(out, "max_instructions", config.max_instructions);
  field(out, "check_oracle", config.check_oracle ? 1 : 0);
  field(out, "flush_period", config.flush_period);
  // stat_stride is deliberately absent: time-series channels never change
  // simulation results, so the same cached cell serves every stride (and
  // pre-existing fingerprints stay valid). fast_path is absent for the same
  // reason: the decode-once engine is bit-identical to the byte-accurate
  // one (pinned by tests/test_fastpath.cpp), so one cached cell serves both.
}

}  // namespace erel::sim
