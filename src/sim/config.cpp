#include "sim/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace erel::sim {

bool config_fingerprintable(const SimConfig& config) {
  return !config.policy_factory;
}

namespace {

// Single enumeration of every result-affecting field, shared by the
// canonical serializer and its parser so the two can never disagree about
// the field list (a field added to one but not the other fails the strict
// parse, which the round-trip test catches). `Config` is (const) SimConfig;
// the visitor is overloaded on the member types.
template <class Config, class Fn>
void canonical_fields(Config& config, Fn&& f) {
  f("policy", config.policy);
  f("phys_int", config.phys_int);
  f("phys_fp", config.phys_fp);
  f("ros_size", config.ros_size);
  f("lsq_size", config.lsq_size);
  f("decode_width", config.decode_width);
  f("issue_width", config.issue_width);
  f("commit_width", config.commit_width);
  f("max_pending_branches", config.max_pending_branches);
  f("ghr_bits", config.ghr_bits);
  f("fetch.width", config.fetch.width);
  f("fetch.max_blocks_per_cycle", config.fetch.max_blocks_per_cycle);
  f("fetch.buffer_capacity", config.fetch.buffer_capacity);
  f("fus.int_alu", config.fus.int_alu);
  f("fus.int_mul", config.fus.int_mul);
  f("fus.fp_alu", config.fus.fp_alu);
  f("fus.fp_mul", config.fus.fp_mul);
  f("fus.fp_div", config.fus.fp_div);
  f("fus.ld_st", config.fus.ld_st);
  for (auto* cache : {&config.memory.l1i, &config.memory.l1d,
                      &config.memory.l2}) {
    const std::string prefix = "memory." + cache->name + ".";
    f(prefix + "size_bytes", cache->size_bytes);
    f(prefix + "associativity", cache->associativity);
    f(prefix + "line_bytes", cache->line_bytes);
    f(prefix + "hit_latency", cache->hit_latency);
  }
  f("memory.memory_latency", config.memory.memory_latency);
  f("max_cycles", config.max_cycles);
  f("max_instructions", config.max_instructions);
  f("check_oracle", config.check_oracle);
  f("flush_period", config.flush_period);
  // stat_stride is deliberately absent: time-series channels never change
  // simulation results, so the same cached cell serves every stride (and
  // pre-existing fingerprints stay valid). fast_path is absent for the same
  // reason: the decode-once engine is bit-identical to the byte-accurate
  // one (pinned by tests/test_fastpath.cpp), so one cached cell serves both.
}

/// Appends "name=value" lines; every member type renders as a decimal
/// std::uint64_t, exactly like the original hand-written serializer.
struct FieldWriter {
  std::string& out;

  void emit(std::string_view name, std::uint64_t value) const {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  void operator()(std::string_view name, std::uint64_t v) const {
    emit(name, v);
  }
  void operator()(std::string_view name, unsigned v) const { emit(name, v); }
  void operator()(std::string_view name, bool v) const {
    emit(name, v ? 1 : 0);
  }
  void operator()(std::string_view name, core::PolicyKind v) const {
    emit(name, static_cast<std::uint64_t>(v));
  }
};

/// Assigns members from a name->text map; tracks strictness violations.
struct FieldReader {
  const std::map<std::string, std::string, std::less<>>& fields;
  std::size_t consumed = 0;
  bool ok = true;

  std::optional<std::uint64_t> get(std::string_view name) {
    const auto it = fields.find(name);
    if (it == fields.end()) {
      ok = false;
      return std::nullopt;
    }
    ++consumed;
    const std::string& text = it->second;
    // strtoull silently wraps "-1"; require a plain digit string.
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
      ok = false;
      return std::nullopt;
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno != 0) {
      ok = false;
      return std::nullopt;
    }
    return v;
  }
  void operator()(std::string_view name, std::uint64_t& v) {
    if (const auto got = get(name)) v = *got;
  }
  void operator()(std::string_view name, unsigned& v) {
    const auto got = get(name);
    if (!got) return;
    if (*got > 0xffffffffull) {
      ok = false;
      return;
    }
    v = static_cast<unsigned>(*got);
  }
  void operator()(std::string_view name, bool& v) {
    const auto got = get(name);
    if (!got) return;
    if (*got > 1) {
      ok = false;
      return;
    }
    v = *got != 0;
  }
  void operator()(std::string_view name, core::PolicyKind& v) {
    const auto got = get(name);
    if (!got) return;
    if (*got > static_cast<std::uint64_t>(core::PolicyKind::Extended)) {
      ok = false;
      return;
    }
    v = static_cast<core::PolicyKind>(*got);
  }
};

}  // namespace

void append_canonical_fields(const SimConfig& config, std::string& out) {
  canonical_fields(config, FieldWriter{out});
}

std::optional<SimConfig> config_from_canonical_fields(
    const std::map<std::string, std::string, std::less<>>& fields) {
  SimConfig config;
  FieldReader reader{fields};
  canonical_fields(config, reader);
  if (!reader.ok || reader.consumed != fields.size()) return std::nullopt;
  return config;
}

}  // namespace erel::sim
