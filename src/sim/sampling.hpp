// Checkpointed interval sampling (SMARTS-style) over the detailed pipeline.
//
// A run is split into instruction intervals. A single planning pass
// fast-forwards the functional oracle through the whole program (training
// predictors and caches when functional warming is on), dropping an
// arch::Checkpoint plus a WarmState snapshot at the start of every sampling
// unit. Measurement then replays each unit independently from its snapshot —
// `warmup` detailed-but-unmeasured instructions prime the short-lived
// pipeline state, the next `detail` instructions are measured — so units can
// run serially or sharded across a thread pool with bit-identical results:
// per-unit SampleRecords are merged in interval order regardless of which
// worker produced them.
//
// Unit placement within each interval is configurable (periodic starts can
// alias with program phases), and instead of measuring every planned unit
// the sampler can keep scheduling units only until the 95% confidence
// interval on IPC is tight enough (`target_ci`).
//
//   sim::SampledSimulator sampler(config, {.period = 200'000});
//   sim::SampledStats s = sampler.run(program);
//   // s.estimate.ipc(), s.ipc_stderr, s.samples, ...
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "arch/program.hpp"
#include "sim/config.hpp"
#include "sim/probe.hpp"
#include "sim/stat_registry.hpp"
#include "sim/stats.hpp"

namespace erel::sim {

/// Where each sampling unit starts inside its interval.
enum class Placement {
  /// Unit k starts exactly at k * period (the SMARTS default). Vulnerable
  /// to aliasing when the program has phase behavior with a period that
  /// divides the sampling period.
  kPeriodic,

  /// Seeded random gaps: consecutive unit starts are separated by a uniform
  /// draw from [window, 2*period - window] (mean gap == period), so no
  /// program phase can stay synchronized with the sampler.
  kRandom,

  /// Stratified (systematic random) sampling: exactly one unit per
  /// [k*period, (k+1)*period) interval, uniformly placed within it. Keeps
  /// periodic sampling's even coverage while breaking phase alignment; this
  /// is the recommended mode for production sweeps.
  kStratified,
};

/// "periodic" / "random" / "stratified" (for reports and CLI flags).
std::string_view placement_name(Placement placement);

/// Inverse of placement_name; aborts on an unknown name.
Placement parse_placement(std::string_view name);

struct SamplingConfig;

/// Appends every result-affecting SamplingConfig field as canonical
/// `name=value` lines for the experiment-result cache fingerprint
/// (harness/fingerprint.hpp). `threads` is deliberately excluded: sharded
/// measurement is bit-identical to serial at any thread count, so the same
/// cached result serves both.
void append_canonical_fields(const SamplingConfig& sampling, std::string& out);

/// Inverse of append_canonical_fields (experiment-daemon wire format).
/// Strict: every canonical field present exactly once, no unknown names,
/// and the (period, warmup, detail) relation the SampledSimulator asserts
/// must hold — a malformed request parses as nullopt, never aborts.
[[nodiscard]] std::optional<SamplingConfig> sampling_from_canonical_fields(
    const std::map<std::string, std::string, std::less<>>& fields);

struct SamplingConfig {
  /// Instructions between consecutive sampling-unit starts (exactly, for
  /// `kPeriodic`; in expectation, for the randomized modes). Must exceed
  /// `warmup + detail` for the fast-forward to actually skip work.
  std::uint64_t period = 100'000;

  /// Detailed but unmeasured instructions run before each measurement to
  /// warm caches, branch predictors and the register file.
  std::uint64_t warmup = 2'000;

  /// Measured detailed instructions per sampling unit.
  std::uint64_t detail = 10'000;

  /// Hard cap on sampling units (0 = sample every interval). The planning
  /// pass always fast-forwards the remainder of the program, so the total
  /// instruction count stays exact whether or not the cap trips.
  std::uint64_t max_samples = 0;

  /// Functional warming (SMARTS): train branch predictors and caches during
  /// the fast-forward so detailed windows start with live long-history
  /// state. Costs ~2x on the fast-forward, removes most cold-start bias;
  /// turn off only to measure that bias.
  bool functional_warming = true;

  /// Interval placement mode (see Placement).
  Placement placement = Placement::kPeriodic;

  /// Seed for the randomized placement modes and for the unit-scheduling
  /// shuffle used by confidence-driven stopping. The same seed reproduces
  /// the same SampleRecords bit-for-bit at any thread count.
  std::uint64_t seed = 0;

  /// Confidence-driven stopping: when > 0, units are measured in seeded
  /// random batches and measurement stops as soon as the 95% CI half-width
  /// on the IPC estimate (delta method) drops to `target_ci` or below —
  /// `max_samples` (when set) stays a hard cap. 0 = measure every planned
  /// unit.
  double target_ci = 0.0;

  /// Worker threads for the measurement phase. 1 = serial (default);
  /// 0 = hardware concurrency. Results are identical at any value.
  unsigned threads = 1;
};

/// One measured interval.
struct SampleRecord {
  std::uint64_t start_instruction = 0;  // icount at the checkpoint
  std::uint64_t instructions = 0;       // measured commits
  std::uint64_t cycles = 0;             // cycles spent on them

  bool operator==(const SampleRecord&) const = default;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / cycles;
  }
  [[nodiscard]] double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) / instructions;
  }
};

struct SampledStats {
  /// Whole-program estimate: `committed` is the exact dynamic instruction
  /// count (the functional oracle executes every instruction), `cycles` is
  /// extrapolated from the mean sampled CPI. Microarchitectural counters
  /// (branches, stalls, caches, occupancy) are left zero — see `measured`.
  SimStats estimate;

  /// Raw sums of the detailed windows (warmup + measured), unscaled: what
  /// the pipeline actually simulated. Materialized from `registry`.
  SimStats measured;

  /// Merged measurement-window StatRegistry: counters and accumulators
  /// summed, distributions combined, time-series channels appended — always
  /// in interval order, so the merged registry is bit-identical at any
  /// thread count (sharded == serial, for *every* metric). Probe-registered
  /// entries merge the same way. Not serialized into the result cache.
  StatRegistry registry;

  /// Measured intervals in interval order (deterministic at any thread
  /// count).
  std::vector<SampleRecord> samples;

  // The whole-program estimator is the arithmetic mean of per-sample CPI
  // (SMARTS); its dispersion propagates to IPC by the delta method
  // (stderr_ipc = stderr_cpi / cpi_mean^2), so the IPC error bars are
  // centered on estimate.ipc() == 1 / cpi_mean.
  double cpi_mean = 0.0;
  double cpi_stddev = 0.0;  // sample stddev (n-1) of per-sample CPI
  double cpi_stderr = 0.0;
  double ipc_mean = 0.0;    // arithmetic mean of per-sample IPC (descriptive)
  double ipc_stddev = 0.0;  // dispersion of per-sample IPC (descriptive)
  double ipc_stderr = 0.0;  // delta-method stderr of estimate.ipc()
  double ipc_ci95 = 0.0;    // 1.96 * ipc_stderr

  std::uint64_t total_instructions = 0;     // exact dynamic count
  std::uint64_t measured_instructions = 0;  // sum over samples
  std::uint64_t detailed_instructions = 0;  // incl. warmup

  /// Units the planning pass captured checkpoints for; with
  /// confidence-driven stopping, `samples.size()` can be smaller.
  std::uint64_t units_planned = 0;

  /// Measurement windows dropped because they recorded committed
  /// instructions but zero measured cycles (warm-up ran into a run-control
  /// limit); they would otherwise poison the IPC mean with infinities.
  std::uint64_t degenerate_windows = 0;

  /// Fraction of the program that ran through the detailed pipeline.
  [[nodiscard]] double detail_fraction() const {
    return total_instructions == 0
               ? 0.0
               : static_cast<double>(detailed_instructions) /
                     static_cast<double>(total_instructions);
  }
};

class SampledSimulator {
 public:
  SampledSimulator(SimConfig config, SamplingConfig sampling);

  /// Runs `program` to completion: one functional planning pass over the
  /// whole program (checkpoints + warm-state snapshots at unit starts),
  /// then detailed warm-up + measurement per unit, serial or sharded.
  /// Each measurement window attaches fresh instances of every probe in
  /// `probes` (instances are per-window, so sharding stays race-free);
  /// their registry entries merge into SampledStats::registry in interval
  /// order, bit-identically at any thread count.
  ///
  /// `cancel` (optional) is polled between planning steps and between
  /// measurement batches; once it returns true the run stops early and the
  /// returned stats are PARTIAL — only a caller that requested the
  /// cancellation may see them, and must discard them.
  [[nodiscard]] SampledStats run(const arch::Program& program,
                                 const std::vector<ProbeSpec>& probes = {},
                                 const std::function<bool()>& cancel = {})
      const;

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const SamplingConfig& sampling() const { return sampling_; }

 private:
  SimConfig config_;
  SamplingConfig sampling_;
};

/// Human-readable sampled-run report (estimate, error bars, speedup inputs).
std::string format_sampled_stats(const SampledStats& stats);

}  // namespace erel::sim
