// Checkpointed interval sampling (SMARTS-style) over the detailed pipeline.
//
// A run is split into fixed instruction intervals. The functional oracle
// fast-forwards (no pipeline, no caches) to each interval boundary, takes an
// arch::Checkpoint, and a detailed core resumes from it: `warmup`
// instructions prime the cold caches/predictors/register file, the next
// `detail` instructions are measured, and per-interval CPI observations are
// aggregated into a whole-program IPC estimate with error bars. Long
// workloads pay detailed-simulation cost only on the measured fraction.
//
//   sim::SampledSimulator sampler(config, {.period = 200'000});
//   sim::SampledStats s = sampler.run(program);
//   // s.estimate.ipc(), s.ipc_stderr, s.samples, ...
#pragma once

#include <cstdint>
#include <vector>

#include "arch/program.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace erel::sim {

struct SamplingConfig {
  /// Instructions between consecutive sampling-unit starts. The first unit
  /// starts at instruction 0. Must exceed `warmup + detail` for the fast-
  /// forward to actually skip work.
  std::uint64_t period = 100'000;

  /// Detailed but unmeasured instructions run before each measurement to
  /// warm caches, branch predictors and the register file.
  std::uint64_t warmup = 2'000;

  /// Measured detailed instructions per sampling unit.
  std::uint64_t detail = 10'000;

  /// Hard cap on sampling units (0 = sample every interval). When the cap
  /// trips, the remainder of the program still fast-forwards functionally so
  /// the total instruction count stays exact.
  std::uint64_t max_samples = 0;

  /// Functional warming (SMARTS): train branch predictors and caches during
  /// the fast-forward so detailed windows start with live long-history
  /// state. Costs ~2x on the fast-forward, removes most cold-start bias;
  /// turn off only to measure that bias.
  bool functional_warming = true;
};

/// One measured interval.
struct SampleRecord {
  std::uint64_t start_instruction = 0;  // icount at the checkpoint
  std::uint64_t instructions = 0;       // measured commits
  std::uint64_t cycles = 0;             // cycles spent on them

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / cycles;
  }
  [[nodiscard]] double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) / instructions;
  }
};

struct SampledStats {
  /// Whole-program estimate: `committed` is the exact dynamic instruction
  /// count (the functional oracle executes every instruction), `cycles` is
  /// extrapolated from the mean sampled CPI. Microarchitectural counters
  /// (branches, stalls, caches, occupancy) are left zero — see `measured`.
  SimStats estimate;

  /// Raw sums of the detailed windows (warmup + measured), unscaled: what
  /// the pipeline actually simulated.
  SimStats measured;

  std::vector<SampleRecord> samples;

  // The whole-program estimator is the arithmetic mean of per-sample CPI
  // (SMARTS); its dispersion propagates to IPC by the delta method
  // (stderr_ipc = stderr_cpi / cpi_mean^2), so the IPC error bars are
  // centered on estimate.ipc() == 1 / cpi_mean.
  double cpi_mean = 0.0;
  double cpi_stddev = 0.0;  // sample stddev (n-1) of per-sample CPI
  double cpi_stderr = 0.0;
  double ipc_mean = 0.0;    // arithmetic mean of per-sample IPC (descriptive)
  double ipc_stddev = 0.0;  // dispersion of per-sample IPC (descriptive)
  double ipc_stderr = 0.0;  // delta-method stderr of estimate.ipc()
  double ipc_ci95 = 0.0;    // 1.96 * ipc_stderr

  std::uint64_t total_instructions = 0;     // exact dynamic count
  std::uint64_t measured_instructions = 0;  // sum over samples
  std::uint64_t detailed_instructions = 0;  // incl. warmup

  /// Fraction of the program that ran through the detailed pipeline.
  [[nodiscard]] double detail_fraction() const {
    return total_instructions == 0
               ? 0.0
               : static_cast<double>(detailed_instructions) /
                     static_cast<double>(total_instructions);
  }
};

class SampledSimulator {
 public:
  SampledSimulator(SimConfig config, SamplingConfig sampling);

  /// Runs `program` to completion: functional fast-forward between interval
  /// boundaries, detailed warm-up + measurement at each.
  [[nodiscard]] SampledStats run(const arch::Program& program) const;

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const SamplingConfig& sampling() const { return sampling_; }

 private:
  SimConfig config_;
  SamplingConfig sampling_;
};

/// Human-readable sampled-run report (estimate, error bars, speedup inputs).
std::string format_sampled_stats(const SampledStats& stats);

}  // namespace erel::sim
