#include "sim/stat_registry.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"
#include "sim/stats.hpp"

namespace erel::sim {

void StatRegistry::Distribution::observe(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

namespace {

const char* kind_name(const StatRegistry::Entry& e) {
  struct Visitor {
    const char* operator()(const StatRegistry::Counter&) { return "counter"; }
    const char* operator()(const StatRegistry::Accum&) { return "accum"; }
    const char* operator()(const StatRegistry::Distribution&) {
      return "distribution";
    }
    const char* operator()(const StatRegistry::TimeSeries&) {
      return "timeseries";
    }
  };
  return std::visit(Visitor{}, e);
}

}  // namespace

template <class Kind>
Kind& StatRegistry::get_or_create(std::string_view path) {
  EREL_CHECK(!path.empty(), "empty registry path");
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    auto [inserted, ok] = entries_.emplace(std::string(path), Kind{});
    (void)ok;
    return std::get<Kind>(inserted->second);
  }
  Kind* kind = std::get_if<Kind>(&it->second);
  EREL_CHECK(kind != nullptr, "registry path '", std::string(path),
             "' already registered as ", kind_name(it->second));
  return *kind;
}

StatRegistry::Counter& StatRegistry::counter(std::string_view path) {
  return get_or_create<Counter>(path);
}

StatRegistry::Accum& StatRegistry::accum(std::string_view path) {
  return get_or_create<Accum>(path);
}

StatRegistry::Distribution& StatRegistry::distribution(std::string_view path) {
  return get_or_create<Distribution>(path);
}

StatRegistry::TimeSeries& StatRegistry::channel(std::string_view path,
                                                std::uint64_t stride) {
  EREL_CHECK(stride > 0, "channel '", std::string(path),
             "' needs a positive stride");
  TimeSeries& ts = get_or_create<TimeSeries>(path);
  if (ts.stride == 0) ts.stride = stride;
  EREL_CHECK(ts.stride == stride, "channel '", std::string(path),
             "' stride mismatch: ", ts.stride, " vs ", stride);
  return ts;
}

namespace {

template <class Kind>
const Kind* find_kind(
    const std::map<std::string, StatRegistry::Entry, std::less<>>& entries,
    std::string_view path) {
  const auto it = entries.find(path);
  if (it == entries.end()) return nullptr;
  return std::get_if<Kind>(&it->second);
}

}  // namespace

const StatRegistry::Counter* StatRegistry::find_counter(
    std::string_view path) const {
  return find_kind<Counter>(entries_, path);
}

const StatRegistry::Accum* StatRegistry::find_accum(
    std::string_view path) const {
  return find_kind<Accum>(entries_, path);
}

const StatRegistry::Distribution* StatRegistry::find_distribution(
    std::string_view path) const {
  return find_kind<Distribution>(entries_, path);
}

const StatRegistry::TimeSeries* StatRegistry::find_channel(
    std::string_view path) const {
  return find_kind<TimeSeries>(entries_, path);
}

std::uint64_t StatRegistry::counter_value(std::string_view path) const {
  const Counter* c = find_counter(path);
  return c == nullptr ? 0 : c->value;
}

double StatRegistry::accum_value(std::string_view path) const {
  const Accum* a = find_accum(path);
  return a == nullptr ? 0.0 : a->value;
}

void StatRegistry::publish_snapshot() {
  if (!snapshot_wanted()) return;
  // Copy outside the lock (the copy is the expensive part; readers must
  // never wait on it), then swap the shared slot in.
  auto copy = std::make_shared<StatRegistry>(*this);
  const std::scoped_lock lock(snap_mu_);
  snap_published_ = std::move(copy);
}

StatRegistry StatRegistry::snapshot() const {
  std::shared_ptr<const StatRegistry> published;
  {
    const std::scoped_lock lock(snap_mu_);
    published = snap_published_;
  }
  return published ? *published : StatRegistry{};
}

void StatRegistry::merge_from(const StatRegistry& other) {
  for (const auto& [path, entry] : other.entries_) {
    const auto it = entries_.find(path);
    if (it == entries_.end()) {
      entries_.emplace(path, entry);
      continue;
    }
    EREL_CHECK(it->second.index() == entry.index(), "registry merge: '", path,
               "' is ", kind_name(it->second), " here but ", kind_name(entry),
               " in the merged-in registry");
    struct Merger {
      const Entry& theirs;
      void operator()(Counter& mine) {
        mine.value += std::get<Counter>(theirs).value;
      }
      void operator()(Accum& mine) {
        mine.value += std::get<Accum>(theirs).value;
      }
      void operator()(Distribution& mine) {
        const auto& d = std::get<Distribution>(theirs);
        if (d.count == 0) return;
        if (mine.count == 0) {
          mine = d;
          return;
        }
        mine.count += d.count;
        mine.sum += d.sum;
        mine.min = std::min(mine.min, d.min);
        mine.max = std::max(mine.max, d.max);
      }
      void operator()(TimeSeries& mine) {
        const auto& ts = std::get<TimeSeries>(theirs);
        if (mine.stride == 0) mine.stride = ts.stride;
        EREL_CHECK(ts.stride == 0 || ts.points.empty() ||
                       mine.stride == ts.stride,
                   "registry merge: channel stride mismatch ", mine.stride,
                   " vs ", ts.stride);
        mine.points.insert(mine.points.end(), ts.points.begin(),
                           ts.points.end());
      }
    };
    std::visit(Merger{entry}, it->second);
  }
}

std::string StatRegistry::format_tree() const {
  std::string out;
  std::vector<std::string_view> open;  // currently-open path components
  char buf[128];
  for (const auto& [path, entry] : entries_) {
    // Split the path and emit headers for newly-opened components.
    std::vector<std::string_view> parts;
    std::string_view rest = path;
    for (std::size_t slash = rest.find('/'); slash != std::string_view::npos;
         slash = rest.find('/')) {
      parts.push_back(rest.substr(0, slash));
      rest = rest.substr(slash + 1);
    }
    std::size_t common = 0;
    while (common < parts.size() && common < open.size() &&
           parts[common] == open[common])
      ++common;
    open.assign(parts.begin(), parts.end());
    for (std::size_t d = common; d < parts.size(); ++d) {
      out.append(2 * d, ' ');
      out += parts[d];
      out += ":\n";
    }
    out.append(2 * parts.size(), ' ');
    out += rest;
    out += " = ";
    struct Renderer {
      std::string& out;
      char (&buf)[128];
      void operator()(const Counter& c) {
        out += std::to_string(c.value);
      }
      void operator()(const Accum& a) {
        std::snprintf(buf, sizeof buf, "%g", a.value);
        out += buf;
      }
      void operator()(const Distribution& d) {
        std::snprintf(buf, sizeof buf, "n=%llu mean=%g min=%g max=%g",
                      static_cast<unsigned long long>(d.count), d.mean(),
                      d.min, d.max);
        out += buf;
      }
      void operator()(const TimeSeries& ts) {
        std::snprintf(buf, sizeof buf, "[%zu points @ stride %llu]", ts.points.size(),
                      static_cast<unsigned long long>(ts.stride));
        out += buf;
      }
    };
    std::visit(Renderer{out, buf}, entry);
    out += '\n';
  }
  return out;
}

std::string_view stat_class_name(unsigned cls) {
  return cls == 0 ? "int" : "fp";
}

const std::array<PolicyStatsField, 8>& policy_stats_fields() {
  using PS = core::PolicyStats;
  static const std::array<PolicyStatsField, 8> fields = {{
      {"conventional_releases", &PS::conventional_releases},
      {"early_commit_releases", &PS::early_commit_releases},
      {"immediate_releases", &PS::immediate_releases},
      {"reuses", &PS::reuses},
      {"branch_confirm_releases", &PS::branch_confirm_releases},
      {"conditional_schedulings", &PS::conditional_schedulings},
      {"fallback_conventional", &PS::fallback_conventional},
      {"stale_suppressed", &PS::stale_suppressed},
  }};
  return fields;
}

const std::array<CacheStatsField, 3>& cache_stats_fields() {
  using CS = mem::CacheStats;
  static const std::array<CacheStatsField, 3> fields = {{
      {"accesses", &CS::accesses},
      {"misses", &CS::misses},
      {"writebacks", &CS::writebacks},
  }};
  return fields;
}

namespace {

std::string class_path(std::string_view prefix, unsigned cls,
                       std::string_view leaf) {
  std::string path(prefix);
  path += '/';
  path += stat_class_name(cls);
  path += '/';
  path += leaf;
  return path;
}

}  // namespace

SimStats materialize_sim_stats(const StatRegistry& reg) {
  SimStats s;
  s.cycles = reg.counter_value(kStatCycles);
  s.committed = reg.counter_value(kStatCommitted);
  s.halted = reg.counter_value(kStatHalted) != 0;
  s.flushes_injected = reg.counter_value(kStatFlushes);
  s.icache_stall_cycles = reg.counter_value(kStatIcacheStalls);

  s.branches.cond_branches = reg.counter_value(kStatCondBranches);
  s.branches.cond_mispredicts = reg.counter_value(kStatCondMispredicts);
  s.branches.indirect_jumps = reg.counter_value(kStatIndirectJumps);
  s.branches.indirect_mispredicts = reg.counter_value(kStatIndirectMispredicts);

  s.stalls.ros_full = reg.counter_value(kStatStallRos);
  s.stalls.lsq_full = reg.counter_value(kStatStallLsq);
  s.stalls.checkpoints_full = reg.counter_value(kStatStallCheckpoints);
  s.stalls.free_list_empty = reg.counter_value(kStatStallFreeList);

  for (unsigned c = 0; c < 2; ++c) {
    for (const PolicyStatsField& f : policy_stats_fields())
      s.policy_stats[c].*f.member =
          reg.counter_value(class_path(kStatPolicyPrefix, c, f.leaf));

    s.squash_released[c] =
        reg.counter_value(class_path(kStatRegfilePrefix, c, "squash_released"));

    // Same arithmetic as RegTracker::occupancy: integral / double(cycles).
    core::Occupancy& occ = s.occupancy[c];
    if (s.cycles != 0) {
      const auto cycles = static_cast<double>(s.cycles);
      double* const avgs[3] = {&occ.avg_empty, &occ.avg_ready, &occ.avg_idle};
      for (unsigned i = 0; i < 3; ++i)
        *avgs[i] = reg.accum_value(class_path(kStatRegfilePrefix, c,
                                              kStatOccIntegralLeaves[i])) /
                   cycles;
    }
  }

  const auto cache = [&](std::string_view name, mem::CacheStats& cs) {
    const std::string prefix =
        std::string(kStatCachePrefix) + '/' + std::string(name) + '/';
    for (const CacheStatsField& f : cache_stats_fields())
      cs.*f.member = reg.counter_value(prefix + std::string(f.leaf));
  };
  cache("l1i", s.l1i);
  cache("l1d", s.l1d);
  cache("l2", s.l2);
  return s;
}

}  // namespace erel::sim
