// Event-driven instrumentation probes (Instrumentation API v2).
//
// A Probe is an observer attached to a pipeline::Core before the run. The
// core emits typed events at the architectural points the paper's
// evaluation cares about — cycle ticks, rename/allocate/release, commit,
// squash, branch resolution, data-cache accesses — and the probe reacts:
// bumping its own StatRegistry entries, writing a trace, sampling a
// channel. Probes are pure observers: attaching any number of them never
// changes simulation results, and with no probe attached the emission sites
// compile down to a never-taken branch.
//
//   struct CommitCounter final : sim::Probe {
//     sim::StatRegistry::Counter* commits = nullptr;
//     void on_run_begin(const sim::SimConfig&, sim::StatRegistry& reg)
//         override {
//       commits = &reg.counter("my/commits");
//     }
//     void on_commit(const sim::CommitEvent&) override { ++*commits; }
//   };
//
//   CommitCounter probe;
//   auto core = sim::Simulator(config).make_core(program);
//   core->attach_probe(&probe);
//   sim::SimStats stats = core->run();
//
// Event-delivery order is deterministic: the core is single-threaded, so
// two runs of the same (config, program) produce bit-identical event
// sequences (pinned by tests/test_probe.cpp).
//
// Built-in probes: power::RixnerProbe (energy/ED² columns, src/power/),
// trace::CaptureProbe (binary commit traces, src/trace/capture.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "isa/isa.hpp"
#include "sim/stat_registry.hpp"

namespace erel::sim {

struct SimConfig;

/// End of one simulated cycle (all phases ran; `cycle` just finished).
struct CycleEvent {
  std::uint64_t cycle = 0;
};

/// One instruction renamed and dispatched — including wrong-path work (it
/// holds physical registers, the resource this paper studies). `inst` and
/// `rec` point into pipeline state and are valid during the callback only.
struct RenameEvent {
  core::InstSeq seq = 0;
  std::uint64_t pc = 0;
  const isa::DecodedInst* inst = nullptr;
  const core::RenameRec* rec = nullptr;
  std::uint64_t cycle = 0;
};

/// Physical-register lifecycle event (allocation or release). `reused`
/// marks the basic mechanism's in-place recycle: the release and the
/// allocation of the successor version arrive as a back-to-back pair that
/// never visits the free list.
struct RegEvent {
  core::RC cls = core::RC::Int;
  core::PhysReg reg = core::kNoReg;
  std::uint64_t cycle = 0;
  bool squashed = false;  // releases on the squash path
  bool reused = false;
};

/// One committed instruction, in program order. The POD prefix doubles as
/// the binary trace record (src/trace/); `inst` / `rec` are only set when
/// the event comes from a live core and are valid during the callback only.
struct CommitEvent {
  std::uint64_t seq = 0;
  std::uint64_t pc = 0;
  std::uint32_t encoding = 0;
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t issue_cycle = 0;
  std::uint64_t complete_cycle = 0;
  std::uint64_t commit_cycle = 0;
  const isa::DecodedInst* inst = nullptr;
  const core::RenameRec* rec = nullptr;
};

/// Wrong-path work squashed: everything younger than `boundary` left the
/// pipeline (kNoSeq boundary = full flush on the exception path).
struct SquashEvent {
  core::InstSeq boundary = core::kNoSeq;
  std::uint64_t squashed_entries = 0;
  std::uint64_t cycle = 0;
};

/// A conditional branch or indirect jump resolved.
struct BranchEvent {
  std::uint64_t pc = 0;
  std::uint64_t target = 0;  // actual target
  bool is_cond = false;
  bool taken = false;
  bool mispredicted = false;
  std::uint64_t cycle = 0;
};

/// One memory access as issued to the cache hierarchy. D-side: loads at
/// issue, stores at commit. I-side (`is_ifetch`): one event per fetch block
/// line touched, mirroring how FetchUnit charges the I-cache. `latency` is
/// the hierarchy's answer, so hit level is recoverable from the configured
/// latencies.
struct CacheAccessEvent {
  std::uint64_t addr = 0;
  bool is_write = false;
  unsigned latency = 0;
  std::uint64_t cycle = 0;
  bool is_ifetch = false;
};

/// A named scalar a probe exports into experiment results (harness
/// ResultSet metric columns). Names are registry-style paths: no spaces.
struct Metric {
  std::string name;
  double value = 0.0;

  bool operator==(const Metric&) const = default;
};

class Probe {
 public:
  virtual ~Probe();

  /// Called once when the probe is attached; `registry` is the core's
  /// registry (alive for the whole run) — register counters/channels here.
  virtual void on_run_begin(const SimConfig& config, StatRegistry& registry);

  virtual void on_cycle(const CycleEvent&) {}
  virtual void on_rename(const RenameEvent&) {}
  virtual void on_reg_alloc(const RegEvent&) {}
  virtual void on_reg_release(const RegEvent&) {}
  virtual void on_commit(const CommitEvent&) {}
  virtual void on_squash(const SquashEvent&) {}
  virtual void on_branch_resolve(const BranchEvent&) {}
  virtual void on_cache_access(const CacheAccessEvent&) {}

  /// Called once at the end of Core::run(), after the registry is
  /// finalized (occupancy integrals, cache counters published).
  virtual void on_run_end(StatRegistry& registry);

  /// Appends named scalar columns for experiment sinks, derived from a
  /// final registry and the run's config. Keep this a pure function of its
  /// arguments (not of instance state): under sampled simulation each
  /// measurement window runs its own probe instance and the window
  /// registries merge, so the harness calls export_metrics on a fresh
  /// instance against the *merged* registry.
  virtual void export_metrics(const SimConfig& config,
                              const StatRegistry& registry,
                              std::vector<Metric>& out) const;
};

/// Publishes consistent StatRegistry snapshots at a fixed cycle cadence so
/// other threads can watch a run in progress (StatRegistry::snapshot());
/// the experiment daemon attaches one to cells with live subscribers. Pure
/// observer: publishing copies the registry, never mutates it, so the run's
/// final registry is bit-identical with or without the probe. Each publish
/// is guarded by the registry's subscriber count — an attached probe on a
/// run nobody watches costs one relaxed atomic load per interval.
class SnapshotProbe final : public Probe {
 public:
  /// `interval` = cycles between publishes (must be > 0).
  explicit SnapshotProbe(std::uint64_t interval = 10'000)
      : interval_(interval) {}

  void on_run_begin(const SimConfig& config, StatRegistry& registry) override;
  void on_cycle(const CycleEvent& event) override;
  void on_run_end(StatRegistry& registry) override;

 private:
  std::uint64_t interval_ = 10'000;
  StatRegistry* registry_ = nullptr;
};

/// A named probe recipe for the experiment layer: the factory builds a
/// fresh instance per simulation (cells and sampling windows run
/// concurrently; instances are never shared). Factories must therefore
/// produce *self-contained* observers: instances that funnel into shared
/// mutable state (one TraceWriter, one output stream) race under sharded
/// sampling — accumulate into the run's StatRegistry instead, which merges
/// deterministically. The *name* keys the cell's result-cache fingerprint
/// — rename the probe when its exported metrics change meaning.
struct ProbeSpec {
  std::string name;
  std::function<std::unique_ptr<Probe>()> make;
};

}  // namespace erel::sim
