// Simulation configuration. Defaults reproduce the paper's Table 2
// processor; experiments vary `policy` and the physical register counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/release_policy.hpp"
#include "core/rename_unit.hpp"
#include "mem/hierarchy.hpp"
#include "pipeline/fetch.hpp"
#include "pipeline/fu_pool.hpp"

namespace erel::sim {

struct SimConfig {
  core::PolicyKind policy = core::PolicyKind::Conventional;

  /// When set, overrides `policy` with a user-supplied ReleasePolicy
  /// implementation (see examples/custom_release_policy.cpp).
  core::PolicyFactory policy_factory;

  // Register files (paper: 40-160 int / 40-160 FP, 32+32 logical).
  unsigned phys_int = 96;
  unsigned phys_fp = 96;

  // Pipeline widths and structures (Table 2).
  unsigned ros_size = 128;
  unsigned lsq_size = 64;
  unsigned decode_width = 8;
  unsigned issue_width = 8;
  unsigned commit_width = 8;
  unsigned max_pending_branches = 20;
  unsigned ghr_bits = 18;
  pipeline::FetchConfig fetch;
  pipeline::FuConfig fus;
  mem::HierarchyConfig memory;

  // Run control.
  std::uint64_t max_cycles = 2'000'000'000;
  std::uint64_t max_instructions = 0;  // 0 = run to completion (HALT)

  // Verification.
  bool check_oracle = true;  // lock-step functional co-simulation at commit

  /// Decode-once fast path (arch::DecodedProgram): pre-decode the program
  /// into micro-op records shared by fetch, the commit oracle and sampled
  /// planning/warming. Semantics-preserving by construction (stores into
  /// the code image fall back to byte-accurate decode), so results are
  /// bit-identical either way and the flag is excluded from the result-cache
  /// fingerprint. Off only for A/B throughput measurement
  /// (bench/sim_throughput) and the engine-equivalence tests.
  bool fast_path = true;

  /// Instrumentation (API v2): when > 0, the core records fixed-stride
  /// time-series channels into its StatRegistry — per-stride Empty/Ready/
  /// Idle occupancy per register class and commits per stride — with one
  /// point every `stat_stride` cycles. Channels never change simulation
  /// results (stats are value-identical at any stride), so the field is
  /// excluded from the result-cache fingerprint; read channels from a live
  /// core's registry, not from cached cells.
  ///
  /// Per-committed-instruction observation (the old `trace` callback) is a
  /// probe now: attach a sim::Probe (e.g. trace::CaptureProbe) to the core
  /// and handle CommitEvents.
  // erel-lint: allow(fingerprint-coverage): stats are stride-invariant
  std::uint64_t stat_stride = 0;

  // Exception-injection fuzzing (§4.3 recovery): flush the pipeline and
  // re-execute from the head instruction every `flush_period` commits.
  std::uint64_t flush_period = 0;  // 0 = off

  /// Loose/tight classification (paper §2): loose iff P >= L + N.
  [[nodiscard]] bool is_loose(unsigned phys) const {
    return phys >= isa::kNumLogicalRegs + ros_size;
  }
};

/// True when the config's simulation results are a pure function of the
/// fields below — i.e. no user-supplied callbacks. Configs carrying a
/// `policy_factory` cannot be fingerprinted for the on-disk result cache
/// (harness/fingerprint.hpp) and are always re-run.
[[nodiscard]] bool config_fingerprintable(const SimConfig& config);

/// Appends every result-affecting field as canonical `name=value` lines.
/// This is the stable serialization the experiment-result cache hashes:
/// adding, removing or reordering a field here invalidates old cache
/// entries (by design — the hash must change when semantics can).
void append_canonical_fields(const SimConfig& config, std::string& out);

/// Inverse of append_canonical_fields, used by the experiment daemon to
/// reconstruct a client's config from the wire (src/service/). Strict by
/// design: every canonical field must be present exactly once and no
/// unknown name may appear, so a client and daemon built from different
/// field lists fail loudly (nullopt) instead of silently simulating a
/// different machine. Fields excluded from the canonical rendering
/// (fast_path, stat_stride) keep their defaults; callers carry them
/// separately when they matter (they never change results).
[[nodiscard]] std::optional<SimConfig> config_from_canonical_fields(
    const std::map<std::string, std::string, std::less<>>& fields);

}  // namespace erel::sim
