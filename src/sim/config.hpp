// Simulation configuration. Defaults reproduce the paper's Table 2
// processor; experiments vary `policy` and the physical register counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/release_policy.hpp"
#include "core/rename_unit.hpp"
#include "mem/hierarchy.hpp"
#include "pipeline/fetch.hpp"
#include "pipeline/fu_pool.hpp"

namespace erel::sim {

struct SimConfig {
  core::PolicyKind policy = core::PolicyKind::Conventional;

  /// When set, overrides `policy` with a user-supplied ReleasePolicy
  /// implementation (see examples/custom_release_policy.cpp).
  core::PolicyFactory policy_factory;

  // Register files (paper: 40-160 int / 40-160 FP, 32+32 logical).
  unsigned phys_int = 96;
  unsigned phys_fp = 96;

  // Pipeline widths and structures (Table 2).
  unsigned ros_size = 128;
  unsigned lsq_size = 64;
  unsigned decode_width = 8;
  unsigned issue_width = 8;
  unsigned commit_width = 8;
  unsigned max_pending_branches = 20;
  unsigned ghr_bits = 18;
  pipeline::FetchConfig fetch;
  pipeline::FuConfig fus;
  mem::HierarchyConfig memory;

  // Run control.
  std::uint64_t max_cycles = 2'000'000'000;
  std::uint64_t max_instructions = 0;  // 0 = run to completion (HALT)

  // Verification.
  bool check_oracle = true;  // lock-step functional co-simulation at commit

  /// Per-committed-instruction pipeline trace ("pipeview"). When set, the
  /// core invokes it at every commit with the instruction's stage timing.
  struct TraceEvent {
    std::uint64_t seq = 0;
    std::uint64_t pc = 0;
    std::uint32_t encoding = 0;
    std::uint64_t dispatch_cycle = 0;
    std::uint64_t issue_cycle = 0;
    std::uint64_t complete_cycle = 0;
    std::uint64_t commit_cycle = 0;
  };
  std::function<void(const TraceEvent&)> trace;

  // Exception-injection fuzzing (§4.3 recovery): flush the pipeline and
  // re-execute from the head instruction every `flush_period` commits.
  std::uint64_t flush_period = 0;  // 0 = off

  /// Loose/tight classification (paper §2): loose iff P >= L + N.
  [[nodiscard]] bool is_loose(unsigned phys) const {
    return phys >= isa::kNumLogicalRegs + ros_size;
  }
};

/// True when the config's simulation results are a pure function of the
/// fields below — i.e. no user-supplied callbacks. Configs carrying a
/// `policy_factory` or a `trace` hook cannot be fingerprinted for the
/// on-disk result cache (harness/fingerprint.hpp) and are always re-run.
[[nodiscard]] bool config_fingerprintable(const SimConfig& config);

/// Appends every result-affecting field as canonical `name=value` lines.
/// This is the stable serialization the experiment-result cache hashes:
/// adding, removing or reordering a field here invalidates old cache
/// entries (by design — the hash must change when semantics can).
void append_canonical_fields(const SimConfig& config, std::string& out);

}  // namespace erel::sim
