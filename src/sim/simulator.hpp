// Public simulation facade.
//
//   erel::sim::SimConfig cfg;
//   cfg.policy = erel::core::PolicyKind::Extended;
//   cfg.phys_int = cfg.phys_fp = 48;
//   erel::sim::Simulator sim(cfg);
//   erel::sim::SimStats stats = sim.run(program);
//   // stats.ipc(), stats.policy_stats, stats.occupancy, ...
//
// Instrumentation (API v2): attach sim::Probe observers for event-driven
// introspection, or run with probes in one call:
//
//   power::RixnerProbe power;
//   sim::SimStats stats = sim.run(program, {&power});
//
// For deeper introspection (architectural registers, memory, conservation
// probes, the StatRegistry) construct a pipeline::Core via make_core().
#pragma once

#include <memory>
#include <vector>

#include "arch/program.hpp"
#include "pipeline/core.hpp"
#include "sim/config.hpp"
#include "sim/probe.hpp"
#include "sim/stats.hpp"

namespace erel::sim {

class Simulator {
 public:
  explicit Simulator(SimConfig config) : config_(std::move(config)) {}

  /// Runs `program` to completion (or a configured limit).
  SimStats run(const arch::Program& program) const {
    return pipeline::Core(config_, program).run();
  }

  /// Runs with observers attached (caller keeps ownership; see
  /// sim/probe.hpp).
  SimStats run(const arch::Program& program,
               const std::vector<Probe*>& probes) const {
    pipeline::Core core(config_, program);
    for (Probe* probe : probes) core.attach_probe(probe);
    return core.run();
  }

  /// Builds a core for step-by-step driving (tests, examples).
  [[nodiscard]] std::unique_ptr<pipeline::Core> make_core(
      const arch::Program& program) const {
    return std::make_unique<pipeline::Core>(config_, program);
  }

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

/// Human-readable parameter dump (bench/table2_parameters).
std::string describe_config(const SimConfig& config);

/// Full statistics report: IPC, stall breakdown, branch/cache behaviour,
/// per-class release channels and occupancy.
std::string format_stats(const SimStats& stats);

}  // namespace erel::sim
