#include "net/fault.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/log.hpp"

namespace erel::net {

const char* fault_kind_name(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kNone:
      return "none";
    case FaultSpec::Kind::kShortWrite:
      return "short-write";
    case FaultSpec::Kind::kStall:
      return "stall";
    case FaultSpec::Kind::kDrop:
      return "drop";
    case FaultSpec::Kind::kBlackhole:
      return "blackhole";
  }
  return "?";
}

namespace {

/// SplitMix64 finalizer (same constants as Xorshift seeding in
/// common/bits.hpp): one multiply-xor cascade per draw keeps nearby
/// (seed, stream, k) triples uncorrelated.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t FaultPlan::draw(std::uint64_t stream, std::uint64_t k,
                              std::uint64_t bound) const {
  EREL_CHECK(bound != 0);
  return mix64(mix64(seed_ ^ stream * 0xbf58476d1ce4e5b9ull) ^
               k * 0x9e3779b97f4a7c15ull) %
         bound;
}

FaultSpec FaultPlan::spec_for_connection(std::uint64_t index) const {
  FaultSpec spec;
  switch (draw(index, 0, 8)) {
    case 0:
    case 1:
    case 2:
      spec.kind = FaultSpec::Kind::kNone;
      break;
    case 3:
    case 4:
      spec.kind = FaultSpec::Kind::kShortWrite;
      break;
    case 5:
      spec.kind = FaultSpec::Kind::kStall;
      break;
    case 6:
      spec.kind = FaultSpec::Kind::kDrop;
      break;
    default:
      spec.kind = FaultSpec::Kind::kBlackhole;
      break;
  }
  // Small offsets on purpose: hello frames and cell requests are tens to
  // hundreds of bytes, so this range lands faults inside headers and
  // mid-frame, not just between messages.
  spec.after_bytes = 1 + draw(index, 1, 512);
  spec.stall_ms = 20 + static_cast<unsigned>(draw(index, 2, 100));
  spec.server_to_client = draw(index, 3, 2) != 0;
  return spec;
}

// ---- FaultySocket ----

bool FaultySocket::send_all(std::string_view bytes) {
  if (!socket_.valid()) return false;
  switch (spec_.kind) {
    case FaultSpec::Kind::kNone:
      sent_ += bytes.size();
      return socket_.send_all(bytes);
    case FaultSpec::Kind::kShortWrite:
      while (!bytes.empty()) {
        const std::size_t n =
            std::min<std::size_t>(bytes.size(), 1 + fragments_++ % 7);
        if (!socket_.send_all(bytes.substr(0, n))) return false;
        sent_ += n;
        bytes.remove_prefix(n);
      }
      return true;
    case FaultSpec::Kind::kStall: {
      if (!stalled_ && sent_ + bytes.size() >= spec_.after_bytes) {
        const std::size_t keep =
            spec_.after_bytes > sent_
                ? static_cast<std::size_t>(spec_.after_bytes - sent_)
                : 0;
        if (!socket_.send_all(bytes.substr(0, keep))) return false;
        sent_ += keep;
        bytes.remove_prefix(keep);
        std::this_thread::sleep_for(std::chrono::milliseconds(spec_.stall_ms));
        stalled_ = true;
      }
      sent_ += bytes.size();
      return socket_.send_all(bytes);
    }
    case FaultSpec::Kind::kDrop: {
      if (sent_ + bytes.size() >= spec_.after_bytes) {
        const std::size_t keep =
            spec_.after_bytes > sent_
                ? static_cast<std::size_t>(spec_.after_bytes - sent_)
                : 0;
        socket_.send_all(bytes.substr(0, keep));
        socket_.close_fd();
        return false;
      }
      sent_ += bytes.size();
      return socket_.send_all(bytes);
    }
    case FaultSpec::Kind::kBlackhole: {
      if (sent_ + bytes.size() >= spec_.after_bytes) {
        const std::size_t keep =
            spec_.after_bytes > sent_
                ? static_cast<std::size_t>(spec_.after_bytes - sent_)
                : 0;
        if (!socket_.send_all(bytes.substr(0, keep))) return false;
        sent_ = spec_.after_bytes;
        return true;  // the rest "was sent" as far as the caller knows
      }
      sent_ += bytes.size();
      return socket_.send_all(bytes);
    }
  }
  return false;
}

bool FaultySocket::send_frame(const Frame& frame) {
  return send_all(encode_frame(frame));
}

// ---- FaultProxy ----

FaultProxy::FaultProxy(std::string upstream_host, std::uint16_t upstream_port,
                       FaultPlan plan, const std::string& listen_host,
                       std::uint16_t listen_port)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      plan_(plan),
      listener_(listen_host, listen_port) {}

FaultProxy::~FaultProxy() { stop(); }

void FaultProxy::start() {
  if (started_ || !valid()) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

bool FaultProxy::sleep_unless_stopped(unsigned ms) {
  // Sleep in slices so stop() is never held up by a scheduled stall.
  for (unsigned slept = 0; slept < ms; slept += 10) {
    if (stop_.load(std::memory_order_acquire)) return false;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(10u, ms - slept)));
  }
  return !stop_.load(std::memory_order_acquire);
}

void FaultProxy::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);
    if (rc < 0 && errno != EINTR) return;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    Socket client = listener_.accept_client();
    if (!client.valid()) continue;
    std::string err;
    Socket upstream = connect_to(upstream_host_, upstream_port_, &err, 2000);
    const std::uint64_t index =
        accepted_.fetch_add(1, std::memory_order_relaxed);
    if (!upstream.valid()) {
      EREL_WARN("faultproxy: upstream connect failed for connection ", index,
                ": ", err);
      continue;  // client sees EOF — indistinguishable from a kDrop at 0
    }
    auto conn = std::make_shared<Conn>();
    conn->client = std::move(client);
    conn->upstream = std::move(upstream);
    conn->spec = plan_.spec_for_connection(index);
    conn->index = index;
    const std::scoped_lock lock(mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    conns_.push_back(conn);
    pumps_.emplace_back([this, conn] { pump(conn, false); });
    pumps_.emplace_back([this, conn] { pump(conn, true); });
  }
}

void FaultProxy::pump(const std::shared_ptr<Conn>& conn,
                      bool server_to_client) {
  Socket& src = server_to_client ? conn->upstream : conn->client;
  Socket& dst = server_to_client ? conn->client : conn->upstream;
  const FaultSpec& spec = conn->spec;
  const bool faulted = spec.kind != FaultSpec::Kind::kNone &&
                       spec.server_to_client == server_to_client;
  // Severing both directions (shutdown, not close: the peer thread still
  // holds the fd) is how one pump's fault or EOF reaches the other.
  const auto sever = [&conn] {
    if (conn->client.valid()) ::shutdown(conn->client.fd(), SHUT_RDWR);
    if (conn->upstream.valid()) ::shutdown(conn->upstream.fd(), SHUT_RDWR);
  };
  std::uint64_t forwarded = 0;
  std::uint64_t fragments = 0;
  bool stalled = false;
  bool blackholed = false;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) {
      sever();
      return;
    }
    std::string chunk;
    switch (src.recv_some(chunk, 50)) {
      case Socket::IoStatus::kTimeout:
        continue;  // re-check stop_
      case Socket::IoStatus::kOk:
        break;
      case Socket::IoStatus::kEof:
      case Socket::IoStatus::kError:
        sever();
        return;
    }
    if (blackholed) continue;  // swallow everything, keep the socket open
    std::string_view bytes = chunk;
    if (faulted && spec.kind == FaultSpec::Kind::kDrop &&
        forwarded + bytes.size() >= spec.after_bytes) {
      const std::size_t keep =
          spec.after_bytes > forwarded
              ? static_cast<std::size_t>(spec.after_bytes - forwarded)
              : 0;
      dst.send_all(bytes.substr(0, keep));
      sever();
      return;
    }
    if (faulted && spec.kind == FaultSpec::Kind::kBlackhole &&
        forwarded + bytes.size() >= spec.after_bytes) {
      const std::size_t keep =
          spec.after_bytes > forwarded
              ? static_cast<std::size_t>(spec.after_bytes - forwarded)
              : 0;
      if (!dst.send_all(bytes.substr(0, keep))) {
        sever();
        return;
      }
      forwarded = spec.after_bytes;
      blackholed = true;
      continue;
    }
    if (faulted && spec.kind == FaultSpec::Kind::kStall && !stalled &&
        forwarded + bytes.size() >= spec.after_bytes) {
      const std::size_t keep =
          spec.after_bytes > forwarded
              ? static_cast<std::size_t>(spec.after_bytes - forwarded)
              : 0;
      if (!dst.send_all(bytes.substr(0, keep))) {
        sever();
        return;
      }
      forwarded += keep;
      bytes.remove_prefix(keep);
      stalled = true;
      if (!sleep_unless_stopped(spec.stall_ms)) {
        sever();
        return;
      }
    }
    if (faulted && spec.kind == FaultSpec::Kind::kShortWrite) {
      while (!bytes.empty()) {
        const std::size_t n =
            std::min<std::size_t>(bytes.size(), 1 + fragments++ % 7);
        if (!dst.send_all(bytes.substr(0, n))) {
          sever();
          return;
        }
        forwarded += n;
        bytes.remove_prefix(n);
      }
      continue;
    }
    if (!dst.send_all(bytes)) {
      sever();
      return;
    }
    forwarded += bytes.size();
  }
}

void FaultProxy::stop() {
  stop_.store(true, std::memory_order_release);
  {
    const std::scoped_lock lock(mu_);
    for (const auto& conn : conns_) {
      if (conn->client.valid()) ::shutdown(conn->client.fd(), SHUT_RDWR);
      if (conn->upstream.valid()) ::shutdown(conn->upstream.fd(), SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> pumps;
  {
    const std::scoped_lock lock(mu_);
    pumps.swap(pumps_);
  }
  for (auto& t : pumps) t.join();
  const std::scoped_lock lock(mu_);
  conns_.clear();
}

}  // namespace erel::net
