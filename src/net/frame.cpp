#include "net/frame.hpp"

#include <cstring>

#include "common/log.hpp"

namespace erel::net {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  const auto b = [p](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  EREL_CHECK(frame.payload.size() <= kMaxFramePayload,
             "frame payload of ", frame.payload.size(),
             " bytes exceeds the ", kMaxFramePayload, "-byte ceiling");
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (!poisoned_) buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (poisoned_) return Status::kError;
  if (buffer_.size() < kFrameHeaderSize) return Status::kNeedMore;
  if (get_u32(buffer_.data()) != kFrameMagic) {
    poisoned_ = true;
    return Status::kError;
  }
  const std::size_t length = get_u32(buffer_.data() + 5);
  if (length > kMaxFramePayload) {
    poisoned_ = true;
    return Status::kError;
  }
  if (buffer_.size() < kFrameHeaderSize + length) return Status::kNeedMore;
  out.type = static_cast<std::uint8_t>(buffer_[4]);
  out.payload.assign(buffer_, kFrameHeaderSize, length);
  buffer_.erase(0, kFrameHeaderSize + length);
  return Status::kFrame;
}

}  // namespace erel::net
