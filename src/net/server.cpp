#include "net/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.hpp"

namespace erel::net {

EventServer::EventServer(Handler& handler, const std::string& host,
                         std::uint16_t port)
    : handler_(handler), listener_(host, port) {
  if (::pipe(wake_pipe_) == 0) {
    ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
    ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  } else {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

EventServer::~EventServer() {
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void EventServer::wake() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void EventServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void EventServer::post(std::function<void()> fn) {
  {
    const std::scoped_lock lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventServer::run_posted() {
  for (;;) {
    std::function<void()> fn;
    {
      const std::scoped_lock lock(post_mu_);
      if (posted_.empty()) return;
      fn = std::move(posted_.front());
      posted_.pop_front();
    }
    fn();
  }
}

void EventServer::send(std::uint64_t client, const Frame& frame) {
  const auto it = conns_.find(client);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  conn.outbound += encode_frame(frame);
  if (conn.outbound.size() > kMaxOutboundBuffer) {
    EREL_WARN("dropping client ", client, ": outbound buffer exceeded ",
              kMaxOutboundBuffer, " bytes (subscriber not reading?)");
    overflow_drops_.fetch_add(1, std::memory_order_relaxed);
    drop(client);
    return;
  }
  // Opportunistic flush; poll() takes over for whatever remains.
  if (!flush_writable(conn)) drop(client);
}

void EventServer::close_client(std::uint64_t client) { drop(client); }

void EventServer::drop(std::uint64_t client) {
  const auto it = conns_.find(client);
  if (it == conns_.end()) return;
  conns_.erase(it);
  handler_.on_disconnect(client);
}

void EventServer::accept_new() {
  Socket socket = listener_.accept_client();
  if (!socket.valid()) return;
  // Non-blocking so the reactor never stalls on one peer.
  ::fcntl(socket.fd(), F_SETFL, O_NONBLOCK);
  const std::uint64_t id = next_client_++;
  conns_.emplace(id, Connection{std::move(socket), FrameDecoder{}, {}});
  handler_.on_connect(id);
}

bool EventServer::drain_readable(std::uint64_t client) {
  const auto it = conns_.find(client);
  if (it == conns_.end()) return true;
  Connection& conn = it->second;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.socket.fd(), chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) return false;  // EOF
    conn.decoder.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    if (static_cast<std::size_t>(n) < sizeof chunk) break;
  }
  for (;;) {
    Frame frame;
    switch (conn.decoder.next(frame)) {
      case FrameDecoder::Status::kFrame:
        handler_.on_frame(client, std::move(frame));
        // The handler may have dropped the client (e.g. shutdown).
        if (conns_.find(client) == conns_.end()) return true;
        break;
      case FrameDecoder::Status::kNeedMore:
        return true;
      case FrameDecoder::Status::kError:
        EREL_WARN("dropping client ", client, ": corrupt frame");
        return false;
    }
  }
}

bool EventServer::flush_writable(Connection& conn) {
  while (!conn.outbound.empty()) {
    const ssize_t n = ::send(conn.socket.fd(), conn.outbound.data(),
                             conn.outbound.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.outbound.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

void EventServer::run() {
  EREL_CHECK(valid(), "EventServer::run on an unbound server: ", error());
  while (!stopping_) {
    if (stop_requested_.load(std::memory_order_acquire)) stopping_ = true;
    run_posted();
    if (stopping_) break;

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;  // ids[i] pairs with fds[i + 2]
    fds.push_back({listener_.fd(), POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.reserve(conns_.size() + 2);
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.outbound.empty()) events |= POLLOUT;
      fds.push_back({conn.socket.fd(), events, 0});
      ids.push_back(id);
    }

    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      EREL_WARN("poll failed: ", std::strerror(errno), "; stopping server");
      break;
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char sink[256];
      while (::read(wake_pipe_[0], sink, sizeof sink) > 0) {
      }
    }
    if ((fds[0].revents & (POLLIN | POLLERR)) != 0) accept_new();

    for (std::size_t i = 0; i < ids.size(); ++i) {
      const pollfd& pfd = fds[i + 2];
      const std::uint64_t id = ids[i];
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfd.revents & POLLIN) == 0) {
        drop(id);
        continue;
      }
      if ((pfd.revents & POLLIN) != 0 && !drain_readable(id)) {
        drop(id);
        continue;
      }
      if ((pfd.revents & POLLOUT) != 0) {
        const auto it = conns_.find(id);
        if (it != conns_.end() && !flush_writable(it->second)) drop(id);
      }
    }
  }
  // Drain closures posted concurrently with the stop so workers blocked on
  // a posted-and-awaited handoff are not stranded.
  run_posted();
  // Closing every connection is the shutdown acknowledgement: peers
  // blocked on recv observe a clean EOF instead of a hung socket. Flush
  // what we can first so already-queued replies are not torn off.
  for (auto& [id, conn] : conns_) flush_writable(conn);
  conns_.clear();
}

}  // namespace erel::net
