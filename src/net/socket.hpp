// Thin RAII layer over POSIX TCP sockets: a move-only fd owner, blocking
// client connect, and a listener bound to localhost by default. Everything
// the framed protocol needs and nothing more — event-loop plumbing lives in
// net/server.hpp, message semantics in src/service/.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.hpp"

namespace erel::net {

/// Owns one file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Releases ownership without closing.
  int release();
  void close_fd();

  // ---- deadlines ----

  /// Kernel-level IO timeouts (SO_RCVTIMEO / SO_SNDTIMEO): a blocking
  /// send/recv that makes no progress for `ms` milliseconds fails with
  /// EAGAIN instead of hanging forever. 0 restores fully-blocking IO.
  bool set_recv_timeout_ms(unsigned ms);
  bool set_send_timeout_ms(unsigned ms);

  /// One poll()-bounded read: waits up to `timeout_ms` for readability,
  /// then appends whatever one recv() returns to `out`.
  enum class IoStatus {
    kOk,       // >= 1 byte appended
    kTimeout,  // deadline expired with nothing to read
    kEof,      // orderly shutdown from the peer
    kError,    // socket error; the connection is dead
  };
  IoStatus recv_some(std::string& out, int timeout_ms);

  // ---- blocking, whole-message IO (client side) ----

  /// Writes all of `bytes`; false on any error (the socket is then dead).
  bool send_all(std::string_view bytes);

  /// Reads exactly one frame. nullopt on EOF, truncation, or corrupt
  /// framing. A clean EOF *between* frames sets `*clean_eof` when provided
  /// (a server shutting down vs. a torn connection).
  std::optional<Frame> recv_frame(bool* clean_eof = nullptr);

  /// Deadline-bounded recv_frame: the whole frame must arrive within
  /// `timeout_ms` (measured from the call, across however many partial
  /// reads it takes). kTimeout leaves the connection and any partially
  /// decoded bytes intact — the caller may retry and the frame resumes
  /// where it left off; kEof/kError mean the connection is unusable
  /// (`*clean_eof` distinguishes orderly shutdown from mid-frame death).
  enum class RecvStatus { kFrame, kTimeout, kEof, kError };
  RecvStatus recv_frame_deadline(Frame& out, int timeout_ms,
                                 bool* clean_eof = nullptr);

  /// send_all(encode_frame(frame)).
  bool send_frame(const Frame& frame);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// "host:port" -> (host, port); nullopt on a malformed spec.
std::optional<std::pair<std::string, std::uint16_t>> parse_endpoint(
    std::string_view spec);

/// Blocking TCP connect. Returns an invalid Socket on failure (resolver or
/// connect error), with the reason in `*error` when provided.
/// `timeout_ms` > 0 bounds each address attempt with a non-blocking
/// connect + poll (a daemon behind a dropping firewall fails in bounded
/// time instead of riding the OS's multi-minute SYN retry schedule);
/// 0 keeps the OS default blocking connect.
Socket connect_to(const std::string& host, std::uint16_t port,
                  std::string* error = nullptr, int timeout_ms = 0);

/// A listening TCP socket. Binds on construction; `valid()` is false (and
/// `error()` set) when bind/listen failed.
class Listener {
 public:
  /// `port` 0 picks an ephemeral port (read it back with port()).
  explicit Listener(const std::string& host = "127.0.0.1",
                    std::uint16_t port = 0);

  [[nodiscard]] bool valid() const { return socket_.valid(); }
  [[nodiscard]] int fd() const { return socket_.fd(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Blocking accept; invalid Socket on failure.
  Socket accept_client();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
  std::string error_;
};

}  // namespace erel::net
