// Deterministic network fault injection for tests and chaos CI.
//
// A FaultPlan is a seed: it deterministically maps a connection index to a
// FaultSpec (drop-after-N-bytes, mid-frame stall, short writes, blackhole),
// so a failing chaos run is reproduced exactly by its seed — the same
// discipline the simulator applies to workload generation (common/bits.hpp
// Xorshift) extended to the wire. The plan is consumed two ways:
//
//  - FaultySocket wraps one connected Socket and misbehaves on send,
//    for tests that play a broken *peer* against the daemon directly;
//  - FaultProxy is a loopback TCP forwarder that applies the plan to
//    whole connections, for end-to-end tests (and the CI chaos job) that
//    drive an unmodified client/daemon pair through a hostile network.
//
// Nothing in src/service/ links against this header; production code paths
// stay fault-free by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace erel::net {

/// One connection's scheduled failure.
struct FaultSpec {
  enum class Kind {
    kNone,        // healthy connection
    kShortWrite,  // bytes dribble through in 1..7-byte fragments
    kStall,       // forwarding pauses for stall_ms once after_bytes passed
    kDrop,        // connection dies (RST/EOF) once after_bytes forwarded
    kBlackhole,   // bytes past after_bytes vanish; the socket stays open
  };
  Kind kind = Kind::kNone;
  std::uint64_t after_bytes = 0;  // bytes let through before the fault fires
  unsigned stall_ms = 0;          // kStall pause length
  bool server_to_client = false;  // direction the fault applies to
};

const char* fault_kind_name(FaultSpec::Kind kind);

/// Seeded splitmix64 schedule of per-connection faults. Copyable and
/// stateless: spec_for_connection(i) depends only on (seed, i), so the
/// proxy, the test, and a human reading a CI log all agree on what
/// connection i suffered.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// The fault assigned to the index-th accepted connection. Roughly half
  /// of all indices are kNone/kShortWrite (the connection works), so a
  /// client retrying with backoff converges on success in a few attempts.
  [[nodiscard]] FaultSpec spec_for_connection(std::uint64_t index) const;

  /// Deterministic uniform draw in [0, bound) at step `k` of stream
  /// `stream` — the fuzz corpus uses this to pick split points and garbage
  /// bytes without threading RNG state around. bound must be nonzero.
  [[nodiscard]] std::uint64_t draw(std::uint64_t stream, std::uint64_t k,
                                   std::uint64_t bound) const;

 private:
  std::uint64_t seed_;
};

/// A connected Socket that misbehaves on send according to a FaultSpec:
/// the broken-peer half of the fault model. Receive-side behaviour is the
/// inner socket's, untouched — read through inner().
class FaultySocket {
 public:
  FaultySocket(Socket socket, FaultSpec spec)
      : socket_(std::move(socket)), spec_(spec) {}

  /// Applies the spec: kShortWrite fragments, kStall sleeps mid-buffer,
  /// kDrop closes the socket once after_bytes have left, kBlackhole
  /// pretends bytes past after_bytes were sent. false once the connection
  /// is unusable.
  bool send_all(std::string_view bytes);
  bool send_frame(const Frame& frame);

  [[nodiscard]] Socket& inner() { return socket_; }
  [[nodiscard]] bool valid() const { return socket_.valid(); }

 private:
  Socket socket_;
  FaultSpec spec_;
  std::uint64_t sent_ = 0;
  std::uint64_t fragments_ = 0;
  bool stalled_ = false;
};

/// Loopback TCP proxy that forwards every accepted connection to an
/// upstream endpoint through the fault assigned by the plan. Each accepted
/// connection gets two pump threads (one per direction); stop() (and the
/// destructor) tears everything down and joins them. Connection indices
/// count from 0 in accept order.
class FaultProxy {
 public:
  FaultProxy(std::string upstream_host, std::uint16_t upstream_port,
             FaultPlan plan, const std::string& listen_host = "127.0.0.1",
             std::uint16_t listen_port = 0);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  [[nodiscard]] bool valid() const { return listener_.valid(); }
  [[nodiscard]] const std::string& error() const { return listener_.error(); }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Starts the accept loop; idempotent.
  void start();

  /// Stops accepting, severs every live connection, joins all threads.
  /// Safe to call more than once.
  void stop();

  /// Connections accepted so far (== the next connection's plan index).
  [[nodiscard]] std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    Socket client;
    Socket upstream;
    FaultSpec spec;
    std::uint64_t index = 0;
  };

  void accept_loop();
  void pump(const std::shared_ptr<Conn>& conn, bool server_to_client);
  bool sleep_unless_stopped(unsigned ms);

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  FaultPlan plan_;
  Listener listener_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::thread accept_thread_;
  std::mutex mu_;  // guards pumps_ and conns_
  std::vector<std::thread> pumps_;
  std::vector<std::shared_ptr<Conn>> conns_;
  bool started_ = false;
};

}  // namespace erel::net
