// poll()-based event-loop server for the framed protocol (net/frame.hpp).
//
// Single-threaded reactor: one thread calls run(), which poll()s the
// listening socket plus every connected client, decodes complete frames and
// hands them to the Handler. Worker threads never touch sockets — they hand
// completed work back to the loop with post(), which enqueues a closure and
// wakes poll() through a self-pipe; the closure then runs on the loop
// thread, where calling send()/close_client() is safe. This is the
// camsgtask/rsrv shape from EPICS-style control servers: per-client message
// handling over one shared reactor, writers funneled through the loop.
//
// Outbound data is buffered per client and drained as POLLOUT reports
// writability, so a slow subscriber cannot block the loop (a client whose
// buffer exceeds kMaxOutboundBuffer is dropped instead).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace erel::net {

/// A subscriber that stops reading can back up megabytes of updates; cap
/// the per-client outbound buffer and drop the connection instead of
/// growing without bound.
inline constexpr std::size_t kMaxOutboundBuffer = 256u << 20;

class EventServer {
 public:
  /// Callbacks fire on the loop thread. `client` ids are unique for the
  /// server's lifetime (never reused), so a stale id in a post()ed closure
  /// addresses nothing rather than the wrong connection.
  struct Handler {
    virtual ~Handler() = default;
    virtual void on_connect(std::uint64_t client) { (void)client; }
    virtual void on_frame(std::uint64_t client, Frame frame) = 0;
    virtual void on_disconnect(std::uint64_t client) { (void)client; }
  };

  /// Binds immediately; valid() reports success (error() the reason).
  EventServer(Handler& handler, const std::string& host = "127.0.0.1",
              std::uint16_t port = 0);
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  [[nodiscard]] bool valid() const { return listener_.valid(); }
  [[nodiscard]] const std::string& error() const { return listener_.error(); }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Runs the event loop until stop(). Call from exactly one thread.
  void run();

  /// Thread-safe: wakes the loop and makes run() return after the current
  /// iteration.
  void stop();

  /// Thread-safe: runs `fn` on the loop thread (the only place send and
  /// close_client may be called). Closures posted after stop() are dropped.
  void post(std::function<void()> fn);

  // ---- loop-thread-only operations ----

  /// Queues a frame for `client`; silently ignores dead/unknown ids (the
  /// client may have disconnected between the work starting and finishing).
  void send(std::uint64_t client, const Frame& frame);

  /// Closes the connection (on_disconnect fires).
  void close_client(std::uint64_t client);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }

  /// Clients dropped for exceeding kMaxOutboundBuffer. Thread-safe read;
  /// surfaced in DaemonStats as `dropped_clients`.
  [[nodiscard]] std::uint64_t overflow_drops() const {
    return overflow_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    Socket socket;
    FrameDecoder decoder;
    std::string outbound;
  };

  void wake();
  void accept_new();
  bool drain_readable(std::uint64_t client);   // false = drop connection
  bool flush_writable(Connection& conn);       // false = drop connection
  void drop(std::uint64_t client);
  void run_posted();

  Handler& handler_;
  Listener listener_;
  std::map<std::uint64_t, Connection> conns_;
  std::uint64_t next_client_ = 1;

  std::atomic<std::uint64_t> overflow_drops_{0};

  int wake_pipe_[2] = {-1, -1};
  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;
  bool stopping_ = false;  // loop-thread view; set via posted closure
  std::atomic<bool> stop_requested_{false};
};

}  // namespace erel::net
