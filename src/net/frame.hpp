// Length-prefixed message framing for the experiment service (src/service/).
//
// A frame is a fixed 9-byte little-endian header followed by an opaque
// payload:
//
//   offset  size  field
//   0       4     magic   0x4C455245 ("EREL" in memory order)
//   4       1     type    message tag (opaque to this layer; see
//                         service/protocol.hpp for the assigned values)
//   5       4     length  payload bytes, <= kMaxFramePayload
//   9       len   payload
//
// The framing layer knows nothing about message semantics: it turns a byte
// stream into (type, payload) records and back. Garbage input — a wrong
// magic, an oversized length — is a hard decode error (the connection is
// beyond resynchronization and must be dropped); a clean EOF in the middle
// of a frame is "truncated". Both are distinguishable from "need more
// bytes", so a poll()-driven server can accumulate partial reads without
// ambiguity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace erel::net {

inline constexpr std::uint32_t kFrameMagic = 0x4C455245u;  // "EREL"
inline constexpr std::size_t kFrameHeaderSize = 9;

/// Payload ceiling (64 MiB): far above any sweep-cell request or result
/// entry, low enough that a corrupt length field cannot make a reader
/// attempt a multi-GB allocation.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

struct Frame {
  std::uint8_t type = 0;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// Header + payload as wire bytes. Aborts if the payload exceeds
/// kMaxFramePayload (a frame that could never be decoded is a programming
/// error, not an IO condition).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental frame extractor: feed() raw bytes as they arrive, then pull
/// complete frames with next(). Once corrupt input is seen the decoder is
/// poisoned — next() keeps returning kError and the owner should drop the
/// connection.
class FrameDecoder {
 public:
  enum class Status {
    kFrame,  // a complete frame was produced
    kNeedMore,  // no complete frame buffered yet
    kError,  // corrupt input (bad magic / oversized length); unrecoverable
  };

  void feed(std::string_view bytes);

  /// Extracts the next complete frame into `out` (only on kFrame).
  [[nodiscard]] Status next(Frame& out);

  /// True when a partial frame is buffered — EOF here means the peer died
  /// mid-frame (truncation), as opposed to a clean between-frames close.
  [[nodiscard]] bool mid_frame() const { return !buffer_.empty(); }

  [[nodiscard]] bool poisoned() const { return poisoned_; }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace erel::net
