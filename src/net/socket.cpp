#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace erel::net {

Socket::~Socket() { close_fd(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t n = ::send(fd_, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Frame> Socket::recv_frame(bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  Frame frame;
  for (;;) {
    switch (decoder_.next(frame)) {
      case FrameDecoder::Status::kFrame:
        return frame;
      case FrameDecoder::Status::kError:
        return std::nullopt;
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) {  // EOF
      if (clean_eof != nullptr) *clean_eof = !decoder_.mid_frame();
      return std::nullopt;
    }
    decoder_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
}

bool Socket::send_frame(const Frame& frame) {
  return send_all(encode_frame(frame));
}

std::optional<std::pair<std::string, std::uint16_t>> parse_endpoint(
    std::string_view spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size())
    return std::nullopt;
  const std::string port_text(spec.substr(colon + 1));
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || port == 0 ||
      port > 65535)
    return std::nullopt;
  return std::make_pair(std::string(spec.substr(0, colon)),
                        static_cast<std::uint16_t>(port));
}

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket connect_to(const std::string& host, std::uint16_t port,
                  std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
      rc != 0) {
    if (error != nullptr) *error = ::gai_strerror(rc);
    return Socket{};
  }
  int fd = -1;
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (error != nullptr) *error = last_error;
    return Socket{};
  }
  set_nodelay(fd);
  return Socket{fd};
}

Listener::Listener(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                   service.c_str(), &hints, &res);
      rc != 0) {
    error_ = ::gai_strerror(rc);
    return;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error_ = std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0)
      break;
    error_ = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return;

  sockaddr_storage addr{};
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    if (addr.ss_family == AF_INET)
      port_ = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    else if (addr.ss_family == AF_INET6)
      port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  error_.clear();
  socket_ = Socket{fd};
}

Socket Listener::accept_client() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket{fd};
    }
    if (errno != EINTR) return Socket{};
  }
}

}  // namespace erel::net
