#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace erel::net {

Socket::~Socket() { close_fd(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

timeval ms_to_timeval(unsigned ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

/// Milliseconds left until `deadline` on the steady clock, clamped at 0.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 1'000'000'000) return 1'000'000'000;
  return static_cast<int>(left.count());
}

}  // namespace

bool Socket::set_recv_timeout_ms(unsigned ms) {
  const timeval tv = ms_to_timeval(ms);
  return fd_ >= 0 &&
         ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

bool Socket::set_send_timeout_ms(unsigned ms) {
  const timeval tv = ms_to_timeval(ms);
  return fd_ >= 0 &&
         ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) == 0;
}

Socket::IoStatus Socket::recv_some(std::string& out, int timeout_ms) {
  if (fd_ < 0) return IoStatus::kError;
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (rc == 0) return IoStatus::kTimeout;
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (n == 0) return IoStatus::kEof;
    out.append(chunk, static_cast<std::size_t>(n));
    return IoStatus::kOk;
  }
}

bool Socket::send_all(std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t n = ::send(fd_, p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Frame> Socket::recv_frame(bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  Frame frame;
  for (;;) {
    switch (decoder_.next(frame)) {
      case FrameDecoder::Status::kFrame:
        return frame;
      case FrameDecoder::Status::kError:
        return std::nullopt;
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) {  // EOF
      if (clean_eof != nullptr) *clean_eof = !decoder_.mid_frame();
      return std::nullopt;
    }
    decoder_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
}

Socket::RecvStatus Socket::recv_frame_deadline(Frame& out, int timeout_ms,
                                               bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    switch (decoder_.next(out)) {
      case FrameDecoder::Status::kFrame:
        return RecvStatus::kFrame;
      case FrameDecoder::Status::kError:
        return RecvStatus::kError;
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    std::string chunk;
    switch (recv_some(chunk, remaining_ms(deadline))) {
      case IoStatus::kOk:
        decoder_.feed(chunk);
        break;
      case IoStatus::kTimeout:
        return RecvStatus::kTimeout;
      case IoStatus::kEof:
        if (clean_eof != nullptr) *clean_eof = !decoder_.mid_frame();
        return RecvStatus::kEof;
      case IoStatus::kError:
        return RecvStatus::kError;
    }
  }
}

bool Socket::send_frame(const Frame& frame) {
  return send_all(encode_frame(frame));
}

std::optional<std::pair<std::string, std::uint16_t>> parse_endpoint(
    std::string_view spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size())
    return std::nullopt;
  const std::string port_text(spec.substr(colon + 1));
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || port == 0 ||
      port > 65535)
    return std::nullopt;
  return std::make_pair(std::string(spec.substr(0, colon)),
                        static_cast<std::uint16_t>(port));
}

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// connect() with an upper bound: non-blocking connect, poll for
/// writability, then read SO_ERROR for the real outcome. Restores the
/// original fd flags on success. Returns 0 or an errno value.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t addr_len,
                         int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  if (::connect(fd, addr, addr_len) == 0) {
    ::fcntl(fd, F_SETFL, flags);
    return 0;
  }
  if (errno != EINPROGRESS) return errno;
  pollfd pfd{fd, POLLOUT, 0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    if (rc == 0) return ETIMEDOUT;
    break;
  }
  int so_error = 0;
  socklen_t len = sizeof so_error;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0)
    return errno;
  if (so_error != 0) return so_error;
  ::fcntl(fd, F_SETFL, flags);
  return 0;
}

}  // namespace

Socket connect_to(const std::string& host, std::uint16_t port,
                  std::string* error, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
      rc != 0) {
    if (error != nullptr) *error = ::gai_strerror(rc);
    return Socket{};
  }
  int fd = -1;
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (timeout_ms > 0) {
      const int err =
          connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms);
      if (err == 0) break;
      last_error = std::strerror(err);
    } else {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_error = std::strerror(errno);
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (error != nullptr) *error = last_error;
    return Socket{};
  }
  set_nodelay(fd);
  return Socket{fd};
}

Listener::Listener(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                   service.c_str(), &hints, &res);
      rc != 0) {
    error_ = ::gai_strerror(rc);
    return;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error_ = std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0)
      break;
    error_ = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return;

  sockaddr_storage addr{};
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    if (addr.ss_family == AF_INET)
      port_ = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    else if (addr.ss_family == AF_INET6)
      port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  error_.clear();
  socket_ = Socket{fd};
}

Socket Listener::accept_client() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket{fd};
    }
    if (errno != EINTR) return Socket{};
  }
}

}  // namespace erel::net
