#include "asmkit/assembler.hpp"

#include <charconv>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/isa.hpp"

namespace erel::asmkit {

namespace {

using arch::Program;
using isa::DecodedInst;
using isa::Format;
using isa::Opcode;
using isa::RegClass;

struct Operand {
  std::string text;
};

struct Line {
  int number = 0;
  std::string label;      // empty if none
  std::string mnemonic;   // empty if label-only / directive-only line
  std::vector<std::string> operands;
  bool is_directive = false;
};

/// Strips comments and surrounding whitespace.
std::string clean_line(std::string_view raw) {
  std::string s{raw};
  for (const char* marker : {"#", ";", "//"}) {
    if (const auto pos = s.find(marker); pos != std::string::npos)
      s.erase(pos);
  }
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split_operands(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  for (auto& op : out) {
    const auto f = op.find_first_not_of(" \t");
    if (f == std::string::npos) {
      op.clear();
      continue;
    }
    const auto l = op.find_last_not_of(" \t");
    op = op.substr(f, l - f + 1);
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Assembler context shared by both passes.
class Assembler {
 public:
  explicit Assembler(std::string_view source) { parse(source); }

  Program build() {
    pass_sizes();
    pass_emit();
    if (!errors_.empty()) {
      std::ostringstream os;
      os << errors_.size() << " assembly error(s):\n";
      for (const auto& e : errors_) os << "  " << e << '\n';
      throw AsmError(os.str());
    }
    if (const auto it = program_.symbols.find("main");
        it != program_.symbols.end()) {
      program_.entry = it->second;
    } else if (const auto it2 = program_.symbols.find("_start");
               it2 != program_.symbols.end()) {
      program_.entry = it2->second;
    }
    return std::move(program_);
  }

 private:
  // ---- parsing ----

  void parse(std::string_view source) {
    int number = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
      const auto nl = source.find('\n', start);
      const std::string_view raw =
          source.substr(start, nl == std::string_view::npos ? std::string_view::npos
                                                            : nl - start);
      ++number;
      parse_line(raw, number);
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  }

  void parse_line(std::string_view raw, int number) {
    std::string text = clean_line(raw);
    if (text.empty()) return;

    Line line;
    line.number = number;

    // Leading label(s). Multiple labels on one line are allowed.
    for (;;) {
      std::size_t i = 0;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      if (i == 0 || i >= text.size() || text[i] != ':') break;
      const std::string label = text.substr(0, i);
      if (!line.label.empty()) {
        // Emit the earlier label as its own line so both bind here.
        Line l;
        l.number = number;
        l.label = line.label;
        lines_.push_back(l);
      }
      line.label = label;
      text = clean_line(text.substr(i + 1));
      if (text.empty()) break;
    }

    if (!text.empty()) {
      const auto sp = text.find_first_of(" \t");
      line.mnemonic = text.substr(0, sp);
      if (sp != std::string::npos)
        line.operands = split_operands(text.substr(sp + 1));
      line.is_directive = line.mnemonic[0] == '.';
    }
    lines_.push_back(std::move(line));
  }

  // ---- shared helpers ----

  void error(const Line& line, const std::string& msg) {
    errors_.push_back("line " + std::to_string(line.number) + ": " + msg);
  }

  static std::optional<std::int64_t> parse_int(std::string_view text) {
    if (text.empty()) return std::nullopt;
    bool negative = false;
    if (text[0] == '-' || text[0] == '+') {
      negative = text[0] == '-';
      text.remove_prefix(1);
    }
    int base = 10;
    if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
      base = 16;
      text.remove_prefix(2);
    }
    std::uint64_t magnitude = 0;
    const auto* end = text.data() + text.size();
    const auto res = std::from_chars(text.data(), end, magnitude, base);
    if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
    const auto value = static_cast<std::int64_t>(magnitude);
    return negative ? -value : value;
  }

  std::optional<unsigned> parse_reg(std::string_view text, RegClass cls) {
    if (text == "zero") return cls == RegClass::Int ? std::optional<unsigned>{0}
                                                    : std::nullopt;
    if (text == "ra") return cls == RegClass::Int ? std::optional<unsigned>{1}
                                                  : std::nullopt;
    if (text == "sp") return cls == RegClass::Int ? std::optional<unsigned>{2}
                                                  : std::nullopt;
    if (text.size() < 2) return std::nullopt;
    const char prefix = cls == RegClass::Fp ? 'f' : 'r';
    if (text[0] != prefix) return std::nullopt;
    const auto idx = parse_int(text.substr(1));
    if (!idx || *idx < 0 || *idx >= isa::kNumLogicalRegs) return std::nullopt;
    return static_cast<unsigned>(*idx);
  }

  /// Value of an operand that may be a literal or a label (pass 2 only).
  std::optional<std::int64_t> value_of(const Line& line, std::string_view text) {
    if (const auto lit = parse_int(text)) return lit;
    const auto it = program_.symbols.find(std::string{text});
    if (it != program_.symbols.end())
      return static_cast<std::int64_t>(it->second);
    error(line, "undefined symbol or bad literal '" + std::string{text} + "'");
    return std::nullopt;
  }

  // ---- pseudo-instruction expansion ----

  /// Emits `li rd, value` as 1, 2 or 8 real instructions.
  static std::vector<DecodedInst> expand_li(unsigned rd, std::int64_t value) {
    std::vector<DecodedInst> out;
    auto mk = [](Opcode op, unsigned d, unsigned s1, std::int32_t imm) {
      DecodedInst i;
      i.op = op;
      i.rd = static_cast<std::uint8_t>(d);
      i.rs1 = static_cast<std::uint8_t>(s1);
      i.imm = imm;
      return i;
    };
    if (fits_signed(value, 14)) {
      out.push_back(mk(Opcode::ADDI, rd, 0, static_cast<std::int32_t>(value)));
      return out;
    }
    if (value >= INT32_MIN && value <= INT32_MAX) {
      const auto v = static_cast<std::int32_t>(value);
      const std::int32_t hi = v >> 13;           // fits in 19 signed bits
      const std::int32_t lo = v & 0x1fff;        // 13 bits, zero-extended ORI
      out.push_back(mk(Opcode::LUI, rd, 0, hi));
      if (lo != 0) out.push_back(mk(Opcode::ORI, rd, rd, lo));
      return out;
    }
    // Full 64-bit materialization: top 32 bits as a 32-bit li, then three
    // shift+or steps injecting 13+13+6 low bits.
    const auto v = static_cast<std::uint64_t>(value);
    const auto top = static_cast<std::int32_t>(v >> 32);
    out.push_back(mk(Opcode::LUI, rd, 0, top >> 13));
    out.push_back(mk(Opcode::ORI, rd, rd, top & 0x1fff));
    out.push_back(mk(Opcode::SLLI, rd, rd, 13));
    out.push_back(mk(Opcode::ORI, rd, rd, static_cast<std::int32_t>((v >> 19) & 0x1fff)));
    out.push_back(mk(Opcode::SLLI, rd, rd, 13));
    out.push_back(mk(Opcode::ORI, rd, rd, static_cast<std::int32_t>((v >> 6) & 0x1fff)));
    out.push_back(mk(Opcode::SLLI, rd, rd, 6));
    out.push_back(mk(Opcode::ORI, rd, rd, static_cast<std::int32_t>(v & 0x3f)));
    return out;
  }

  /// Number of instructions `li` will occupy (needed by pass 1 before
  /// symbols resolve; `la` is always the 2-instruction 32-bit form).
  static std::size_t li_size(std::int64_t value) {
    if (fits_signed(value, 14)) return 1;
    if (value >= INT32_MIN && value <= INT32_MAX)
      return (value & 0x1fff) != 0 ? 2 : 1;
    return 8;
  }

  /// Rewrites pseudo mnemonics into real ones; returns instruction count for
  /// sizing. Pass 2 calls emit=true to push encoded words.
  std::size_t handle_instruction(const Line& line, bool emit) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        if (emit)
          error(line, m + " expects " + std::to_string(n) + " operands, got " +
                          std::to_string(ops.size()));
        return false;
      }
      return true;
    };

    // --- pseudo-instructions ---
    if (m == "nop") {
      if (emit) emit_inst(line, Opcode::ADDI, 0, 0, 0, 0);
      return 1;
    }
    if (m == "mv") {
      if (!need(2)) return 1;
      if (emit) {
        const auto rd = reg_or_err(line, ops[0], RegClass::Int);
        const auto rs = reg_or_err(line, ops[1], RegClass::Int);
        emit_inst(line, Opcode::ADDI, rd, rs, 0, 0);
      }
      return 1;
    }
    if (m == "not") {
      if (!need(2)) return 1;
      if (emit) {
        const auto rd = reg_or_err(line, ops[0], RegClass::Int);
        const auto rs = reg_or_err(line, ops[1], RegClass::Int);
        emit_inst(line, Opcode::XORI, rd, rs, 0, -1);
      }
      return 1;
    }
    if (m == "neg") {
      if (!need(2)) return 1;
      if (emit) {
        const auto rd = reg_or_err(line, ops[0], RegClass::Int);
        const auto rs = reg_or_err(line, ops[1], RegClass::Int);
        emit_inst(line, Opcode::SUB, rd, 0, rs, 0);
      }
      return 1;
    }
    if (m == "li") {
      if (!need(2)) return 1;
      const auto value = parse_int(ops[1]);
      if (!value) {
        if (emit) error(line, "li needs a literal constant (use la for labels)");
        return 1;
      }
      if (emit) {
        const auto rd = reg_or_err(line, ops[0], RegClass::Int);
        for (const DecodedInst& inst : expand_li(rd, *value))
          push_encoded(inst);
      }
      return li_size(*value);
    }
    if (m == "la") {
      if (!need(2)) return 2;
      if (emit) {
        const auto rd = reg_or_err(line, ops[0], RegClass::Int);
        const auto value = value_of(line, ops[1]);
        if (value) {
          if (*value < 0 || *value > INT32_MAX) {
            error(line, "la target out of 31-bit range");
          } else {
            const auto v = static_cast<std::int32_t>(*value);
            emit_inst(line, Opcode::LUI, rd, 0, 0, v >> 13);
            emit_inst(line, Opcode::ORI, rd, rd, 0, v & 0x1fff);
            return 2;
          }
        }
        // Error path: keep sizes consistent with pass 1.
        emit_inst(line, Opcode::ADDI, rd, 0, 0, 0);
        emit_inst(line, Opcode::ADDI, rd, 0, 0, 0);
      }
      return 2;
    }
    if (m == "b" || m == "j") {
      if (!need(1)) return 1;
      if (emit) emit_jump(line, 0, ops[0]);
      return 1;
    }
    if (m == "call") {
      if (!need(1)) return 1;
      if (emit) emit_jump(line, 1, ops[0]);  // link into ra
      return 1;
    }
    if (m == "ret") {
      if (emit) emit_inst(line, Opcode::JALR, 0, 1, 0, 0);
      return 1;
    }
    if (m == "beqz" || m == "bnez") {
      if (!need(2)) return 1;
      if (emit) {
        const auto rs = reg_or_err(line, ops[0], RegClass::Int);
        emit_branch(line, m == "beqz" ? Opcode::BEQ : Opcode::BNE, rs, 0,
                    ops[1]);
      }
      return 1;
    }
    if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
      if (!need(3)) return 1;
      if (emit) {
        const auto rs1 = reg_or_err(line, ops[0], RegClass::Int);
        const auto rs2 = reg_or_err(line, ops[1], RegClass::Int);
        const Opcode op = (m == "bgt")    ? Opcode::BLT
                          : (m == "ble")  ? Opcode::BGE
                          : (m == "bgtu") ? Opcode::BLTU
                                          : Opcode::BGEU;
        emit_branch(line, op, rs2, rs1, ops[2]);  // swapped operands
      }
      return 1;
    }

    // --- real instructions ---
    const auto opcode = isa::opcode_from_mnemonic(m);
    if (!opcode) {
      if (emit) error(line, "unknown mnemonic '" + m + "'");
      return 1;
    }
    if (emit) emit_real(line, *opcode);
    return 1;
  }

  unsigned reg_or_err(const Line& line, std::string_view text, RegClass cls) {
    const auto r = parse_reg(text, cls);
    if (!r) {
      error(line, std::string("bad ") +
                      (cls == RegClass::Fp ? "fp" : "int") + " register '" +
                      std::string{text} + "'");
      return 0;
    }
    return *r;
  }

  void push_encoded(const DecodedInst& inst) {
    program_.code.push_back(isa::encode(inst));
  }

  void emit_inst(const Line& line, Opcode op, unsigned rd, unsigned rs1,
                 unsigned rs2, std::int32_t imm) {
    DecodedInst inst;
    inst.op = op;
    inst.rd = static_cast<std::uint8_t>(rd);
    inst.rs1 = static_cast<std::uint8_t>(rs1);
    inst.rs2 = static_cast<std::uint8_t>(rs2);
    inst.imm = imm;
    const unsigned width = [&] {
      switch (isa::op_info(op).format) {
        case Format::I: return isa::kImmBitsI;
        case Format::U: return isa::kImmBitsU;
        case Format::B: return isa::kImmBitsB;
        case Format::S: return isa::kImmBitsS;
        case Format::J: return isa::kImmBitsJ;
        default: return 32u;
      }
    }();
    if (width < 32 && !fits_signed(imm, width)) {
      error(line, "immediate " + std::to_string(imm) + " does not fit in " +
                      std::to_string(width) + " bits");
      inst.imm = 0;
    }
    push_encoded(inst);
  }

  void emit_branch(const Line& line, Opcode op, unsigned rs1, unsigned rs2,
                   std::string_view target) {
    const auto value = value_of(line, target);
    std::int64_t offset = 0;
    if (value) {
      const std::int64_t delta =
          *value - static_cast<std::int64_t>(current_pc());
      if (delta % 4 != 0) {
        error(line, "branch target not instruction-aligned");
      } else {
        offset = delta / 4;
      }
    }
    emit_inst(line, op, 0, rs1, rs2, static_cast<std::int32_t>(offset));
  }

  void emit_jump(const Line& line, unsigned rd, std::string_view target) {
    const auto value = value_of(line, target);
    std::int64_t offset = 0;
    if (value) {
      const std::int64_t delta =
          *value - static_cast<std::int64_t>(current_pc());
      if (delta % 4 != 0) {
        error(line, "jump target not instruction-aligned");
      } else {
        offset = delta / 4;
      }
    }
    emit_inst(line, Opcode::JAL, rd, 0, 0, static_cast<std::int32_t>(offset));
  }

  [[nodiscard]] std::uint64_t current_pc() const {
    return program_.code_base + 4 * program_.code.size();
  }

  void emit_real(const Line& line, Opcode op) {
    const isa::OpInfo& info = isa::op_info(op);
    const auto& ops = line.operands;
    auto expect = [&](std::size_t n) {
      if (ops.size() != n) {
        error(line, std::string{info.mnemonic} + " expects " +
                        std::to_string(n) + " operands, got " +
                        std::to_string(ops.size()));
        return false;
      }
      return true;
    };

    switch (info.format) {
      case Format::R: {
        const bool two_ops = info.src2 == RegClass::None;
        if (!expect(two_ops ? 2 : 3)) return;
        const unsigned rd = reg_or_err(line, ops[0], info.dst);
        const unsigned rs1 = reg_or_err(line, ops[1], info.src1);
        const unsigned rs2 = two_ops ? 0 : reg_or_err(line, ops[2], info.src2);
        emit_inst(line, op, rd, rs1, rs2, 0);
        return;
      }
      case Format::I: {
        if (info.flags & isa::kFlagLoad) {
          if (!expect(2)) return;
          const unsigned rd = reg_or_err(line, ops[0], info.dst);
          auto [imm, base] = parse_mem_operand(line, ops[1]);
          emit_inst(line, op, rd, base, 0, imm);
          return;
        }
        if (info.flags & isa::kFlagIndirectJump) {
          if (ops.size() == 2) {  // jalr rd, rs1
            const unsigned rd = reg_or_err(line, ops[0], RegClass::Int);
            const unsigned rs1 = reg_or_err(line, ops[1], RegClass::Int);
            emit_inst(line, op, rd, rs1, 0, 0);
            return;
          }
          if (!expect(3)) return;
          const unsigned rd = reg_or_err(line, ops[0], RegClass::Int);
          const unsigned rs1 = reg_or_err(line, ops[1], RegClass::Int);
          const auto imm = value_of(line, ops[2]);
          emit_inst(line, op, rd, rs1, 0,
                    static_cast<std::int32_t>(imm.value_or(0)));
          return;
        }
        if (!expect(3)) return;
        const unsigned rd = reg_or_err(line, ops[0], info.dst);
        const unsigned rs1 = reg_or_err(line, ops[1], info.src1);
        const auto imm = value_of(line, ops[2]);
        emit_inst(line, op, rd, rs1, 0,
                  static_cast<std::int32_t>(imm.value_or(0)));
        return;
      }
      case Format::U: {
        if (!expect(2)) return;
        const unsigned rd = reg_or_err(line, ops[0], info.dst);
        const auto imm = value_of(line, ops[1]);
        emit_inst(line, op, rd, 0, 0, static_cast<std::int32_t>(imm.value_or(0)));
        return;
      }
      case Format::B: {
        if (!expect(3)) return;
        const unsigned rs1 = reg_or_err(line, ops[0], info.src1);
        const unsigned rs2 = reg_or_err(line, ops[1], info.src2);
        emit_branch(line, op, rs1, rs2, ops[2]);
        return;
      }
      case Format::S: {
        if (!expect(2)) return;
        const unsigned rs2 = reg_or_err(line, ops[0], info.src2);
        auto [imm, base] = parse_mem_operand(line, ops[1]);
        emit_inst(line, op, 0, base, rs2, imm);
        return;
      }
      case Format::J: {
        if (ops.size() == 1) {
          emit_jump(line, 1, ops[0]);  // `jal label` links into ra
          return;
        }
        if (!expect(2)) return;
        const unsigned rd = reg_or_err(line, ops[0], RegClass::Int);
        emit_jump(line, rd, ops[1]);
        return;
      }
      case Format::N:
        if (!expect(0)) return;
        emit_inst(line, op, 0, 0, 0, 0);
        return;
    }
  }

  /// Parses `imm(base)`, `(base)` or `label(base)` memory operands.
  std::pair<std::int32_t, unsigned> parse_mem_operand(const Line& line,
                                                      std::string_view text) {
    const auto open = text.find('(');
    const auto close = text.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      error(line, "bad memory operand '" + std::string{text} + "'");
      return {0, 0};
    }
    const std::string_view imm_text = text.substr(0, open);
    const std::string_view base_text = text.substr(open + 1, close - open - 1);
    std::int64_t imm = 0;
    if (!imm_text.empty()) {
      const auto v = value_of(line, imm_text);
      imm = v.value_or(0);
    }
    const unsigned base = reg_or_err(line, base_text, RegClass::Int);
    return {static_cast<std::int32_t>(imm), base};
  }

  // ---- data directives ----

  /// Handles a directive; returns bytes occupied (pass 1 sizing) and appends
  /// to the data image when emitting.
  std::size_t handle_directive(const Line& line, bool emit) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    if (m == ".text" || m == ".data" || m == ".globl" || m == ".global")
      return 0;  // section switching handled by caller; .globl is a no-op

    auto push_scalar = [&](std::uint64_t value, unsigned size) {
      if (!emit) return;
      for (unsigned i = 0; i < size; ++i)
        data_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    };

    if (m == ".word" || m == ".dword") {
      const unsigned size = m == ".word" ? 4 : 8;
      for (const auto& op : ops) {
        if (emit) {
          const auto v = value_of(line, op);
          push_scalar(static_cast<std::uint64_t>(v.value_or(0)), size);
        }
      }
      return size * ops.size();
    }
    if (m == ".double") {
      for (const auto& op : ops) {
        if (emit) {
          char* end = nullptr;
          const double d = std::strtod(op.c_str(), &end);
          if (end != op.c_str() + op.size())
            error(line, "bad double literal '" + op + "'");
          push_scalar(f2u(d), 8);
        }
      }
      return 8 * ops.size();
    }
    if (m == ".space") {
      if (ops.size() != 1) {
        if (emit) error(line, ".space expects a byte count");
        return 0;
      }
      const auto n = parse_int(ops[0]);
      if (!n || *n < 0) {
        if (emit) error(line, "bad .space count");
        return 0;
      }
      if (emit) data_.insert(data_.end(), static_cast<std::size_t>(*n), 0);
      return static_cast<std::size_t>(*n);
    }
    if (m == ".align") {
      if (ops.size() != 1) {
        if (emit) error(line, ".align expects an alignment");
        return 0;
      }
      const auto n = parse_int(ops[0]);
      if (!n || *n <= 0 || !is_pow2(static_cast<std::uint64_t>(*n))) {
        if (emit) error(line, "bad .align value");
        return 0;
      }
      const auto align = static_cast<std::size_t>(*n);
      const std::size_t here = emit ? data_.size() : size_cursor_;
      const std::size_t pad = (align - here % align) % align;
      if (emit) data_.insert(data_.end(), pad, 0);
      return pad;
    }
    if (m == ".fill") {
      if (ops.size() != 2) {
        if (emit) error(line, ".fill expects count, bytevalue");
        return 0;
      }
      const auto count = parse_int(ops[0]);
      const auto value = parse_int(ops[1]);
      if (!count || *count < 0 || !value) {
        if (emit) error(line, "bad .fill operands");
        return 0;
      }
      if (emit)
        data_.insert(data_.end(), static_cast<std::size_t>(*count),
                     static_cast<std::uint8_t>(*value));
      return static_cast<std::size_t>(*count);
    }
    if (emit) error(line, "unknown directive '" + m + "'");
    return 0;
  }

  // ---- passes ----

  void pass_sizes() {
    bool in_text = true;
    std::uint64_t text_cursor = program_.code_base;
    std::uint64_t data_cursor = arch::kDefaultDataBase;
    for (const Line& line : lines_) {
      if (!line.label.empty()) {
        const std::uint64_t here = in_text ? text_cursor : data_cursor;
        if (program_.symbols.contains(line.label))
          error(line, "duplicate label '" + line.label + "'");
        program_.symbols[line.label] = here;
      }
      if (line.mnemonic.empty()) continue;
      if (line.is_directive) {
        if (line.mnemonic == ".text") {
          in_text = true;
          continue;
        }
        if (line.mnemonic == ".data") {
          in_text = false;
          continue;
        }
        if (in_text) {
          error(line, "data directive in .text section");
          continue;
        }
        size_cursor_ = data_cursor - arch::kDefaultDataBase;
        data_cursor += handle_directive(line, /*emit=*/false);
      } else {
        if (!in_text) {
          error(line, "instruction in .data section");
          continue;
        }
        text_cursor += 4 * handle_instruction(line, /*emit=*/false);
      }
    }
  }

  void pass_emit() {
    bool in_text = true;
    for (const Line& line : lines_) {
      if (line.mnemonic.empty()) continue;
      if (line.is_directive) {
        if (line.mnemonic == ".text") {
          in_text = true;
          continue;
        }
        if (line.mnemonic == ".data") {
          in_text = false;
          continue;
        }
        if (!in_text) handle_directive(line, /*emit=*/true);
      } else if (in_text) {
        handle_instruction(line, /*emit=*/true);
      }
    }
    if (!data_.empty()) {
      arch::DataSegment seg;
      seg.base = arch::kDefaultDataBase;
      seg.bytes = std::move(data_);
      program_.data.push_back(std::move(seg));
    }
  }

  std::vector<Line> lines_;
  std::vector<std::string> errors_;
  Program program_;
  std::vector<std::uint8_t> data_;
  std::size_t size_cursor_ = 0;
};

}  // namespace

Program assemble(std::string_view source) { return Assembler{source}.build(); }

}  // namespace erel::asmkit
