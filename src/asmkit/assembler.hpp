// Two-pass assembler for the erelsim ISA.
//
// Syntax summary (see README for the full reference):
//   - Comments: '#', ';' or '//' to end of line.
//   - Labels: `name:` at line start; label addresses are section-relative.
//   - Sections: `.text` (default, at 0x10000) and `.data` (at 0x100000).
//   - Data directives: .word, .dword, .double, .space N, .align N,
//     .fill COUNT, BYTEVALUE. `.dword label` stores a pointer.
//   - Registers: r0..r31 / f0..f31 plus aliases zero (r0), ra (r1), sp (r2).
//   - Pseudo-instructions: nop, mv, li (any 64-bit constant), la, not, neg,
//     b, beqz, bnez, bgt, ble, bgtu, bleu, call, ret, j.
//
// The assembler reports every error it finds (not just the first) with line
// numbers, then throws AsmError.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "arch/program.hpp"

namespace erel::asmkit {

class AsmError : public std::runtime_error {
 public:
  explicit AsmError(const std::string& what) : std::runtime_error(what) {}
};

/// Assembles `source` into a loadable program. Throws AsmError with all
/// collected diagnostics on failure. If a `main` or `_start` label exists it
/// becomes the entry point; otherwise execution starts at the first
/// instruction.
arch::Program assemble(std::string_view source);

}  // namespace erel::asmkit
