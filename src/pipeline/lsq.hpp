// Load/Store Queue: 64 entries with store-to-load forwarding. Loads follow
// the paper's conservative disambiguation rule ("loads are executed when all
// previously store addresses are known"); a load whose bytes are partially
// covered by older stores waits until those stores commit and reads memory.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace erel::pipeline {

struct LsqEntry {
  core::InstSeq seq = core::kNoSeq;
  bool is_store = false;
  std::uint8_t size = 0;
  bool addr_known = false;
  std::uint64_t addr = 0;
  bool data_ready = false;  // stores: value staged
  std::uint64_t data = 0;
  bool misaligned = false;
};

/// What a load may do right now.
enum class LoadStatus : std::uint8_t {
  Wait,     // an older store address is unknown, or a partial overlap exists
  Forward,  // a single older store fully covers the load; value available
  Memory,   // no older store overlaps: safe to access the D-cache
};

class Lsq {
 public:
  explicit Lsq(unsigned capacity);

  [[nodiscard]] bool full() const { return size_ >= capacity_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Allocates an entry at dispatch (program order).
  void push(core::InstSeq seq, bool is_store, unsigned size);

  /// Address (and, for stores, data) arrive at execute.
  void set_address(core::InstSeq seq, std::uint64_t addr, bool misaligned);
  void set_store_data(core::InstSeq seq, std::uint64_t data);

  /// Disambiguation + forwarding decision for a load whose address is known.
  /// On Forward, `*value` receives the load-sized, zero-extended bytes.
  [[nodiscard]] LoadStatus query_load(core::InstSeq seq,
                                      std::uint64_t* value) const;

  /// Read-only entry access (the memory stage needs the resolved address).
  [[nodiscard]] const LsqEntry& get(core::InstSeq seq) const { return find(seq); }

  /// The oldest entry must belong to `seq`; removes and returns it (commit).
  LsqEntry pop_commit(core::InstSeq seq);

  /// Drops every entry younger than `boundary` (branch squash).
  void squash_after(core::InstSeq boundary);

  void clear() { size_ = 0; }

 private:
  [[nodiscard]] const LsqEntry& find(core::InstSeq seq) const;
  LsqEntry& find(core::InstSeq seq);

  /// i-th oldest live entry (0 == front).
  [[nodiscard]] const LsqEntry& nth(std::size_t i) const {
    return slots_[(head_ + i) & mask_];
  }
  [[nodiscard]] LsqEntry& nth(std::size_t i) {
    return slots_[(head_ + i) & mask_];
  }

  unsigned capacity_;
  // Program order, oldest first, in a pow2 ring (the queue holds at most
  // `capacity_` small trivially-copyable entries — a node container buys
  // nothing here).
  std::vector<LsqEntry> slots_;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
  std::uint32_t mask_ = 0;
};

}  // namespace erel::pipeline
