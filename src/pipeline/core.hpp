// The out-of-order execution core: an execute-driven, cycle-level model of
// the paper's Table 2 processor. Wrong-path instructions are genuinely
// fetched, renamed and executed (they hold physical registers — the resource
// this paper studies), and are squashed on branch resolution.
//
// Per-cycle phase order (tick): commit -> writeback/resolve -> memory stage
// -> issue -> dispatch/rename -> fetch. Earlier phases see the state left by
// the previous cycle, so results written back in cycle T feed issues in T
// (one-cycle producer-consumer distance for single-cycle ops) and commits in
// T+1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "arch/memory.hpp"
#include "arch/program.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "core/rename_unit.hpp"
#include "core/types.hpp"
#include "dev/machine.hpp"
#include "mem/hierarchy.hpp"
#include "pipeline/fetch.hpp"
#include "pipeline/fu_pool.hpp"
#include "pipeline/lsq.hpp"
#include "pipeline/ros.hpp"
#include "pipeline/scheduler.hpp"
#include "sim/config.hpp"
#include "sim/probe.hpp"
#include "sim/stat_registry.hpp"
#include "sim/stats.hpp"
#include "sim/warm_state.hpp"

namespace erel::pipeline {

class Core final : public core::PipelineHooks {
 public:
  Core(const sim::SimConfig& config, const arch::Program& program);

  /// As above, with a pre-built decode-once program cache shared across
  /// cores (sampled simulation builds one per run instead of one per
  /// measurement window). Ignored when config.fast_path is off; when
  /// fast_path is on and `decoded` is null, the core builds its own.
  Core(const sim::SimConfig& config, const arch::Program& program,
       std::shared_ptr<const arch::DecodedProgram> decoded);

  /// Resumes detailed simulation from an architectural checkpoint (sampled
  /// simulation, saved fast-forwards): memory is restored to the checkpoint
  /// image, fetch starts at its PC, the committed-register state is seeded
  /// into the rename map's architectural versions, and the oracle (when
  /// enabled) co-simulates from the same point. Without `warm`, caches and
  /// predictors start cold; with it, they are copied from a functionally
  /// warmed sim::WarmState (cache stats are reset so the measured window
  /// counts only its own accesses).
  ///
  /// Passing a non-null `decoded` vouches that the checkpoint's code image
  /// matches it. With `decoded` null (and fast_path on) the core builds its
  /// own cache and validates the restored image against the program first,
  /// falling back to byte-accurate execution when a self-modified
  /// checkpoint would make the cache stale.
  Core(const sim::SimConfig& config, const arch::Program& program,
       const arch::Checkpoint& checkpoint,
       const sim::WarmState* warm = nullptr,
       std::shared_ptr<const arch::DecodedProgram> decoded = nullptr);
  ~Core() override;

  /// Advances one cycle.
  void tick();

  /// Runs until HALT commits or a run-control limit is reached; finalizes
  /// the statistics registry and returns the SimStats view of it.
  sim::SimStats run();

  // ---- instrumentation (Instrumentation API v2) ----

  /// Attaches an observer for the run. Call before the first tick; the
  /// probe's on_run_begin fires immediately (registering its counters in
  /// the core's registry), its event callbacks fire during simulation, and
  /// on_run_end fires inside run(). Probes never change simulation results;
  /// the caller keeps ownership and must outlive the core.
  void attach_probe(sim::Probe* probe);

  /// Builds fresh instances from named probe recipes (fatal on a null
  /// factory result) and attaches each; the returned vector owns them and
  /// must outlive the core's run.
  [[nodiscard]] std::vector<std::unique_ptr<sim::Probe>> attach_probes(
      const std::vector<sim::ProbeSpec>& specs);

  /// The open statistics surface. Hot pipeline counters (stalls, branches,
  /// squashes) are live during the run; subsystem-owned metrics (policy
  /// channels, occupancy integrals, cache counters) and the optional
  /// fixed-stride channels (SimConfig::stat_stride) are published when
  /// run() finalizes. sim::materialize_sim_stats() derives SimStats from
  /// it.
  [[nodiscard]] const sim::StatRegistry& registry() const { return registry_; }
  [[nodiscard]] sim::StatRegistry& registry() { return registry_; }

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] std::uint64_t committed() const { return committed_; }

  /// Committed architectural state (for result checks; stale mappings hold
  /// dead values, flagged via `stale`).
  [[nodiscard]] std::uint64_t arch_reg(core::RC cls, unsigned logical,
                                       bool* stale = nullptr) const;
  [[nodiscard]] const arch::SparseMemory& memory() const { return mem_; }

  [[nodiscard]] const core::RenameUnit& rename_unit() const { return rename_; }

  /// Invariant probe for tests: free + allocated == P per class.
  [[nodiscard]] bool conservation_holds() const;

  // --- core::PipelineHooks ---
  core::RenameRec* find_inflight(core::InstSeq seq) override;
  bool branch_pending_between(core::InstSeq lo,
                              core::InstSeq hi) const override;
  core::InstSeq newest_pending_branch() const override;
  unsigned pending_branch_count() const override;
  void on_reg_alloc(core::RC cls, core::PhysReg p, std::uint64_t cycle,
                    bool reused) override;
  void on_reg_release(core::RC cls, core::PhysReg p, std::uint64_t cycle,
                      bool squashed, bool reused) override;

 private:
  /// Entry for `seq` if it is still the same dynamic instruction.
  RosEntry* live_entry(core::InstSeq seq, std::uint64_t uid);

  void phase_commit();
  void phase_writeback();
  void phase_memory();
  void phase_issue();
  void phase_dispatch();
  void phase_fetch();

  /// Publishes end-of-run metrics (cycles/committed/halted, policy
  /// counters, occupancy integrals + channels, cache counters) into the
  /// registry. Called once, by run().
  void finish_registry();

  [[nodiscard]] bool operands_ready(const RosEntry& e) const;
  [[nodiscard]] std::uint64_t operand_value(isa::RegClass cls,
                                            core::PhysReg p) const;

  /// Hands a Dispatched entry to the issue scheduler: parked on the first
  /// operand register found not ready (mirroring operands_ready()'s check
  /// order), or straight into the ready queue.
  void schedule_issue(RosEntry& e);

  /// Writeback wakeup: re-evaluates every consumer parked on (cls, reg).
  void wake_consumers(core::RC cls, core::PhysReg reg);

  void execute(RosEntry& e);
  void complete(RosEntry& e);
  void resolve_branch(RosEntry& e);
  void squash_after(core::InstSeq boundary);
  void exception_flush(std::uint64_t resume_pc);
  void check_oracle(const RosEntry& e, const LsqEntry* mem_entry);
  [[nodiscard]] std::uint64_t finish_load_value(isa::Opcode op,
                                                std::uint64_t raw) const;

  sim::SimConfig config_;
  // Decode-once program cache (null when config.fast_path is off): fetch
  // reads micro-op records for in-image PCs, the oracle executes from it.
  // A committed store into the code image detaches it from fetch (the
  // oracle detaches itself when it replays the store).
  std::shared_ptr<const arch::DecodedProgram> decoded_;
  arch::SparseMemory mem_;  // committed memory state
  mem::MemoryHierarchy hierarchy_;
  branch::Gshare gshare_;
  branch::Btb btb_;
  branch::Ras ras_;
  FetchUnit fetch_;
  Ros ros_;
  Lsq lsq_;
  FuPool fu_pool_;
  core::RenameUnit rename_;

  std::vector<core::InstSeq> pending_branches_;  // unresolved, decode order
                                                 // (bounded by the
                                                 // checkpoint stack depth)
  IssueScheduler scheduler_;
  CompletionQueue completions_;
  std::vector<SchedTag> woken_;  // wake_consumers scratch (no nesting)
  // Registers whose squashed definer reused its previous mapping: the
  // squash resurrects their ready bit without a writeback, so survivors
  // parked on them must be re-woken (squash_after scratch).
  std::vector<std::pair<core::RC, core::PhysReg>> reuse_wakes_;
  std::vector<SchedTag> pending_loads_;   // in the memory stage
  std::vector<SchedTag> pending_stores_;  // address known, data pending
  std::uint64_t next_uid_ = 1;

  std::unique_ptr<arch::ArchState> oracle_;

  // The timing side's own device instance (the oracle carries another; both
  // see the same MMIO operations at the same retirement boundaries, so they
  // stay bit-identical). Interrupts are delivered in phase_commit at the
  // head of the ROS — the oldest not-yet-retired, provably correct-path
  // instruction — mirroring ArchState::step's boundary exactly.
  dev::Machine dev_;
  // Retirement boundary = icount_base_ + committed_ (nonzero when resumed
  // from a checkpoint, so device time continues from the functional
  // fast-forward instead of restarting at zero).
  std::uint64_t icount_base_ = 0;

  std::uint64_t cycle_ = 0;
  std::uint64_t committed_ = 0;
  bool halted_ = false;
  std::uint64_t last_commit_cycle_ = 0;  // deadlock watchdog
  std::uint64_t next_flush_at_ = 0;
  core::InstSeq last_flushed_seq_ = core::kNoSeq;

  // Statistics registry (the open observation surface) plus cached handles
  // for the counters the pipeline bumps on its hot paths. Handles stay
  // valid for the core's lifetime (map-node stability).
  sim::StatRegistry registry_;
  struct {
    sim::StatRegistry::Counter* cond_branches = nullptr;
    sim::StatRegistry::Counter* cond_mispredicts = nullptr;
    sim::StatRegistry::Counter* indirect_jumps = nullptr;
    sim::StatRegistry::Counter* indirect_mispredicts = nullptr;
    sim::StatRegistry::Counter* ros_full = nullptr;
    sim::StatRegistry::Counter* lsq_full = nullptr;
    sim::StatRegistry::Counter* checkpoints_full = nullptr;
    sim::StatRegistry::Counter* free_list_empty = nullptr;
    sim::StatRegistry::Counter* flushes_injected = nullptr;
    sim::StatRegistry::Counter* squash_released[core::kNumClasses] = {};
  } ctr_;

  std::vector<sim::Probe*> probes_;  // non-owning, attach order
  // Cached probes_.empty() — one flag instead of a size load+compare at
  // every event fan-out site on the hot phases.
  bool has_probes_ = false;

  // Fixed-stride commit channel bookkeeping (config_.stat_stride > 0;
  // handle registered in the ctor, null when channels are off).
  sim::StatRegistry::TimeSeries* chan_commits_ = nullptr;
  std::uint64_t chan_committed_at_stride_ = 0;
};

}  // namespace erel::pipeline
