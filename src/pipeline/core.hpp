// The out-of-order execution core: an execute-driven, cycle-level model of
// the paper's Table 2 processor. Wrong-path instructions are genuinely
// fetched, renamed and executed (they hold physical registers — the resource
// this paper studies), and are squashed on branch resolution.
//
// Per-cycle phase order (tick): commit -> writeback/resolve -> memory stage
// -> issue -> dispatch/rename -> fetch. Earlier phases see the state left by
// the previous cycle, so results written back in cycle T feed issues in T
// (one-cycle producer-consumer distance for single-cycle ops) and commits in
// T+1.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "arch/memory.hpp"
#include "arch/program.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "core/rename_unit.hpp"
#include "core/types.hpp"
#include "mem/hierarchy.hpp"
#include "pipeline/fetch.hpp"
#include "pipeline/fu_pool.hpp"
#include "pipeline/lsq.hpp"
#include "pipeline/ros.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/warm_state.hpp"

namespace erel::pipeline {

class Core final : public core::PipelineHooks {
 public:
  Core(const sim::SimConfig& config, const arch::Program& program);

  /// Resumes detailed simulation from an architectural checkpoint (sampled
  /// simulation, saved fast-forwards): memory is restored to the checkpoint
  /// image, fetch starts at its PC, the committed-register state is seeded
  /// into the rename map's architectural versions, and the oracle (when
  /// enabled) co-simulates from the same point. Without `warm`, caches and
  /// predictors start cold; with it, they are copied from a functionally
  /// warmed sim::WarmState (cache stats are reset so the measured window
  /// counts only its own accesses).
  Core(const sim::SimConfig& config, const arch::Program& program,
       const arch::Checkpoint& checkpoint,
       const sim::WarmState* warm = nullptr);
  ~Core() override;

  /// Advances one cycle.
  void tick();

  /// Runs until HALT commits or a run-control limit is reached; returns the
  /// final statistics.
  sim::SimStats run();

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] std::uint64_t committed() const { return committed_; }

  /// Committed architectural state (for result checks; stale mappings hold
  /// dead values, flagged via `stale`).
  [[nodiscard]] std::uint64_t arch_reg(core::RC cls, unsigned logical,
                                       bool* stale = nullptr) const;
  [[nodiscard]] const arch::SparseMemory& memory() const { return mem_; }

  [[nodiscard]] const core::RenameUnit& rename_unit() const { return rename_; }

  /// Invariant probe for tests: free + allocated == P per class.
  [[nodiscard]] bool conservation_holds() const;

  // --- core::PipelineHooks ---
  core::RenameRec* find_inflight(core::InstSeq seq) override;
  bool branch_pending_between(core::InstSeq lo,
                              core::InstSeq hi) const override;
  core::InstSeq newest_pending_branch() const override;
  unsigned pending_branch_count() const override;

 private:
  struct CompletionEvent {
    std::uint64_t cycle;
    core::InstSeq seq;
    std::uint64_t uid;  // must match the ROS entry (seqs recycle on squash)
    bool operator>(const CompletionEvent& other) const {
      return cycle > other.cycle;
    }
  };

  /// Entry for `seq` if it is still the same dynamic instruction.
  RosEntry* live_entry(core::InstSeq seq, std::uint64_t uid);

  void phase_commit();
  void phase_writeback();
  void phase_memory();
  void phase_issue();
  void phase_dispatch();
  void phase_fetch();

  [[nodiscard]] bool operands_ready(const RosEntry& e) const;
  [[nodiscard]] std::uint64_t operand_value(isa::RegClass cls,
                                            core::PhysReg p) const;
  void execute(RosEntry& e);
  void complete(RosEntry& e);
  void resolve_branch(RosEntry& e);
  void squash_after(core::InstSeq boundary);
  void exception_flush(std::uint64_t resume_pc);
  void check_oracle(const RosEntry& e, const LsqEntry* mem_entry);
  [[nodiscard]] std::uint64_t finish_load_value(isa::Opcode op,
                                                std::uint64_t raw) const;

  sim::SimConfig config_;
  arch::SparseMemory mem_;  // committed memory state
  mem::MemoryHierarchy hierarchy_;
  branch::Gshare gshare_;
  branch::Btb btb_;
  branch::Ras ras_;
  FetchUnit fetch_;
  Ros ros_;
  Lsq lsq_;
  FuPool fu_pool_;
  core::RenameUnit rename_;

  std::deque<core::InstSeq> pending_branches_;  // unresolved, decode order
  std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                      std::greater<>>
      events_;
  std::vector<CompletionEvent> pending_loads_;   // cycle field unused
  std::vector<CompletionEvent> pending_stores_;  // address known, data pending
  std::uint64_t next_uid_ = 1;

  std::unique_ptr<arch::ArchState> oracle_;

  std::uint64_t cycle_ = 0;
  std::uint64_t committed_ = 0;
  bool halted_ = false;
  std::uint64_t last_commit_cycle_ = 0;  // deadlock watchdog
  std::uint64_t next_flush_at_ = 0;
  core::InstSeq last_flushed_seq_ = core::kNoSeq;

  sim::SimStats stats_;
};

}  // namespace erel::pipeline
