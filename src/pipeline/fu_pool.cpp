#include "pipeline/fu_pool.hpp"

#include "common/log.hpp"

namespace erel::pipeline {

FuPool::FuPool(const FuConfig& config)
    : config_(config), div_busy_until_(config.fp_div, 0) {}

void FuPool::begin_cycle(std::uint64_t) { issued_this_cycle_.fill(0); }

unsigned FuPool::count(isa::FuClass cls) const {
  switch (cls) {
    case isa::FuClass::None: return ~0u;
    case isa::FuClass::IntAlu: return config_.int_alu;
    case isa::FuClass::IntMul: return config_.int_mul;
    case isa::FuClass::FpAlu: return config_.fp_alu;
    case isa::FuClass::FpMul: return config_.fp_mul;
    case isa::FuClass::FpDiv: return config_.fp_div;
    case isa::FuClass::LdSt: return config_.ld_st;
  }
  return 0;
}

bool FuPool::try_issue(isa::FuClass cls, std::uint64_t cycle,
                       unsigned latency) {
  if (cls == isa::FuClass::None) return true;
  auto& issued = issued_this_cycle_[static_cast<unsigned>(cls)];
  if (cls == isa::FuClass::FpDiv) {
    // Unpipelined: a unit must be idle, and it stays busy for the full
    // latency of the operation.
    if (issued >= config_.fp_div) return false;
    for (auto& busy_until : div_busy_until_) {
      if (busy_until <= cycle) {
        busy_until = cycle + latency;
        ++issued;
        return true;
      }
    }
    return false;
  }
  if (issued >= count(cls)) return false;
  ++issued;
  return true;
}

}  // namespace erel::pipeline
