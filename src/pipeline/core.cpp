#include "pipeline/core.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/semantics.hpp"

namespace erel::pipeline {

using core::InstSeq;
using core::kNoSeq;
using core::RC;
using isa::DecodedInst;
using isa::Opcode;
using isa::RegClass;

namespace {

/// True when `mem` still holds exactly the static program's code words. A
/// checkpoint captured after self-modifying stores restores a different
/// image; the decode cache must not be trusted against it.
bool code_image_matches(const arch::Program& program,
                        const arch::SparseMemory& mem) {
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (mem.read_u32(program.code_base + 4 * i) != program.code[i])
      return false;
  }
  return true;
}

}  // namespace

Core::Core(const sim::SimConfig& config, const arch::Program& program)
    : Core(config, program,
           std::shared_ptr<const arch::DecodedProgram>{}) {}

Core::Core(const sim::SimConfig& config, const arch::Program& program,
           std::shared_ptr<const arch::DecodedProgram> decoded)
    : config_(config),
      decoded_(config.fast_path
                   ? (decoded != nullptr
                          ? std::move(decoded)
                          : std::make_shared<const arch::DecodedProgram>(
                                program))
                   : nullptr),
      hierarchy_(config.memory),
      gshare_(config.ghr_bits),
      btb_(),
      ras_(),
      fetch_(config.fetch, mem_, hierarchy_, gshare_, btb_, ras_),
      ros_(config.ros_size),
      lsq_(config.lsq_size),
      fu_pool_(config.fus),
      rename_({config.phys_int, config.phys_fp, config.policy,
               config.max_pending_branches, config.policy_factory},
              *this),
      scheduler_(config.phys_int, config.phys_fp) {
  arch::load_program(program, mem_);
  fetch_.set_pc(program.entry);
  fetch_.set_decoded(decoded_.get());
  fetch_.set_probes(&probes_);
  if (config.check_oracle)
    oracle_ = std::make_unique<arch::ArchState>(program, decoded_.get());
  if (config.flush_period != 0) next_flush_at_ = config.flush_period;

  // Register the hot pipeline counters (sim/stat_registry.hpp documents the
  // path scheme); everything else is published by finish_registry().
  ctr_.cond_branches = &registry_.counter(sim::kStatCondBranches);
  ctr_.cond_mispredicts = &registry_.counter(sim::kStatCondMispredicts);
  ctr_.indirect_jumps = &registry_.counter(sim::kStatIndirectJumps);
  ctr_.indirect_mispredicts =
      &registry_.counter(sim::kStatIndirectMispredicts);
  ctr_.ros_full = &registry_.counter(sim::kStatStallRos);
  ctr_.lsq_full = &registry_.counter(sim::kStatStallLsq);
  ctr_.checkpoints_full = &registry_.counter(sim::kStatStallCheckpoints);
  ctr_.free_list_empty = &registry_.counter(sim::kStatStallFreeList);
  ctr_.flushes_injected = &registry_.counter(sim::kStatFlushes);
  for (unsigned c = 0; c < core::kNumClasses; ++c) {
    std::string path(sim::kStatRegfilePrefix);
    path += '/';
    path += sim::stat_class_name(c);
    path += "/squash_released";
    ctr_.squash_released[c] = &registry_.counter(path);
    if (config_.stat_stride != 0)
      rename_.rf(static_cast<RC>(c)).tracker.enable_channels(
          config_.stat_stride);
  }
  if (config_.stat_stride != 0)
    chan_commits_ =
        &registry_.channel(sim::kChannelCommits, config_.stat_stride);
}

Core::Core(const sim::SimConfig& config, const arch::Program& program,
           const arch::Checkpoint& checkpoint, const sim::WarmState* warm,
           std::shared_ptr<const arch::DecodedProgram> decoded)
    : Core(config, program, decoded) {
  // A caller-supplied cache is a vouch that the checkpoint's code image
  // matches it (SampledSimulator tracks this per unit as decoded_ok), so
  // only a core-built cache pays the validation scan below.
  const bool caller_vouched = decoded != nullptr;
  if (warm != nullptr) {
    gshare_ = warm->gshare;
    btb_ = warm->btb;
    ras_ = warm->ras;
    hierarchy_ = warm->hierarchy;
    hierarchy_.reset_stats();
  }
  // The checkpoint's resident set is a superset of the program image (code
  // and initialized data materialize their pages at load), so restoring it
  // wholesale reproduces functional memory state exactly.
  arch::restore_memory(checkpoint, mem_);
  if (decoded_ != nullptr && !caller_vouched &&
      !code_image_matches(program, mem_)) {
    // The checkpoint was captured after self-modifying stores (or carries a
    // different image entirely): the static decode cache is stale for this
    // resume, so drop to the byte-accurate engine wholesale. The scan is
    // one u32 compare per static instruction, paid once per cold resume.
    fetch_.set_decoded(nullptr);
    if (oracle_) oracle_->detach_decoded();
    decoded_.reset();
  }
  fetch_.set_pc(checkpoint.pc);
  halted_ = checkpoint.halted;
  dev_.load(checkpoint.dev);
  icount_base_ = checkpoint.icount;
  // Seed the committed register values into the architectural versions the
  // reset-state rename map points at (identity mapping; all marked written
  // and ready at init, so write_value only installs the values).
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    auto& irf = rename_.rf(RC::Int);
    auto& frf = rename_.rf(RC::Fp);
    irf.write_value(irf.iomt.get(r).phys, checkpoint.int_regs[r], 0);
    frf.write_value(frf.iomt.get(r).phys, checkpoint.fp_regs[r], 0);
  }
  if (oracle_) arch::restore(checkpoint, *oracle_);
}

Core::~Core() = default;

// --- instrumentation ----------------------------------------------------

void Core::attach_probe(sim::Probe* probe) {
  EREL_CHECK(probe != nullptr, "attach_probe(nullptr)");
  probes_.push_back(probe);
  has_probes_ = true;
  fetch_.note_probes_changed();
  // Arm the register-lifecycle seam: RegFileState only routes alloc/release
  // notifications through its hooks pointer once a probe is listening, so
  // unprobed runs pay no virtual calls on the rename path.
  for (unsigned c = 0; c < core::kNumClasses; ++c)
    rename_.rf(static_cast<RC>(c)).hooks = this;
  probe->on_run_begin(config_, registry_);
}

std::vector<std::unique_ptr<sim::Probe>> Core::attach_probes(
    const std::vector<sim::ProbeSpec>& specs) {
  std::vector<std::unique_ptr<sim::Probe>> instances;
  instances.reserve(specs.size());
  for (const sim::ProbeSpec& spec : specs) {
    instances.push_back(spec.make());
    EREL_CHECK(instances.back() != nullptr, "probe factory '", spec.name,
               "' returned null");
    attach_probe(instances.back().get());
  }
  return instances;
}

void Core::on_reg_alloc(RC cls, core::PhysReg p, std::uint64_t cycle,
                        bool reused) {
  const sim::RegEvent ev{cls, p, cycle, /*squashed=*/false, reused};
  for (sim::Probe* probe : probes_) probe->on_reg_alloc(ev);
}

void Core::on_reg_release(RC cls, core::PhysReg p, std::uint64_t cycle,
                          bool squashed, bool reused) {
  const sim::RegEvent ev{cls, p, cycle, squashed, reused};
  for (sim::Probe* probe : probes_) probe->on_reg_release(ev);
}

// --- PipelineHooks -----------------------------------------------------

core::RenameRec* Core::find_inflight(InstSeq seq) {
  if (!ros_.contains(seq)) return nullptr;
  return &ros_.at(seq).rec;
}

RosEntry* Core::live_entry(InstSeq seq, std::uint64_t uid) {
  if (!ros_.contains(seq)) return nullptr;
  RosEntry& e = ros_.at(seq);
  return e.uid == uid ? &e : nullptr;
}

bool Core::branch_pending_between(InstSeq lo, InstSeq hi) const {
  for (const InstSeq b : pending_branches_) {
    if (b > lo && b < hi) return true;
  }
  return false;
}

InstSeq Core::newest_pending_branch() const {
  return pending_branches_.empty() ? kNoSeq : pending_branches_.back();
}

unsigned Core::pending_branch_count() const {
  return static_cast<unsigned>(pending_branches_.size());
}

// --- helpers ------------------------------------------------------------

std::uint64_t Core::operand_value(RegClass cls, core::PhysReg p) const {
  return rename_.rf(core::rc_from(cls)).value.at(p);
}

bool Core::operands_ready(const RosEntry& e) const {
  const core::RenameRec& rec = e.rec;
  if (rec.c1 != RegClass::None &&
      !rename_.rf(core::rc_from(rec.c1)).ready[rec.p1])
    return false;
  // Stores issue as soon as the base register is ready: address generation
  // is decoupled from the data (which the LSQ captures when it is produced).
  // Serializing stores on their data would stall every younger load behind
  // the conservative disambiguation rule.
  if (e.inst.is_store()) return true;
  if (rec.c2 != RegClass::None &&
      !rename_.rf(core::rc_from(rec.c2)).ready[rec.p2])
    return false;
  return true;
}

std::uint64_t Core::finish_load_value(Opcode op, std::uint64_t raw) const {
  if (op == Opcode::LW) return static_cast<std::uint64_t>(sext(raw, 32));
  return raw;  // LD/FLD full width, LBU zero-extended by the byte extract
}

void Core::schedule_issue(RosEntry& e) {
  // Park on the *first* operand register found not ready, checked in the
  // same order operands_ready() checks them; whoever drains the park (the
  // wakeup for that register, or the pop-time re-check in phase_issue)
  // re-evaluates the full condition, so waiting on one operand at a time is
  // sufficient: every false->true ready transition is a write_value (or a
  // squashed reuse, which squash_after re-wakes explicitly).
  const core::RenameRec& rec = e.rec;
  if (rec.c1 != RegClass::None &&
      !rename_.rf(core::rc_from(rec.c1)).ready[rec.p1]) {
    scheduler_.park(core::rc_from(rec.c1), rec.p1, {e.seq, e.uid});
    e.sched = SchedResidence::Parked;
    return;
  }
  if (!e.inst.is_store() && rec.c2 != RegClass::None &&
      !rename_.rf(core::rc_from(rec.c2)).ready[rec.p2]) {
    scheduler_.park(core::rc_from(rec.c2), rec.p2, {e.seq, e.uid});
    e.sched = SchedResidence::Parked;
    return;
  }
  scheduler_.make_ready({e.seq, e.uid});
  e.sched = SchedResidence::Ready;
}

void Core::wake_consumers(core::RC cls, core::PhysReg reg) {
  EREL_CHECK(woken_.empty());  // call sites never nest
  scheduler_.wake(cls, reg, woken_);
  for (const SchedTag tag : woken_) {
    // Squashes remove parked tags eagerly, so a woken tag is always a live,
    // still-Dispatched instruction.
    RosEntry* entry = live_entry(tag.seq, tag.uid);
    EREL_CHECK(entry != nullptr && entry->state == EntryState::Dispatched &&
                   entry->sched == SchedResidence::Parked,
               "stale wakeup tag for seq ", tag.seq);
    entry->sched = SchedResidence::None;
    schedule_issue(*entry);
  }
  woken_.clear();
}

// --- per-cycle phases ----------------------------------------------------

void Core::phase_fetch() { fetch_.tick(cycle_); }

void Core::phase_dispatch() {
  unsigned dispatched = 0;
  while (dispatched < config_.decode_width && !fetch_.buffer_empty()) {
    const FetchedInst& fi = fetch_.front();
    const DecodedInst& inst = fi.inst;
    if (ros_.full()) {
      ++*ctr_.ros_full;
      return;
    }
    if (inst.is_mem() && lsq_.full()) {
      ++*ctr_.lsq_full;
      return;
    }
    const bool needs_checkpoint =
        inst.is_cond_branch() || inst.is_indirect_jump();
    if (needs_checkpoint && !rename_.can_checkpoint()) {
      ++*ctr_.checkpoints_full;
      return;
    }

    const InstSeq seq = ros_.tail_seq();
    RosEntry& e = ros_.push(seq);
    e.uid = next_uid_++;
    e.pc = fi.pc;
    e.inst = inst;
    e.dispatch_cycle = cycle_;
    e.fault = inst.op == Opcode::ILLEGAL;
    // The entry must be registered (find_inflight) before renaming: an
    // instruction can be the last use of its own destination's previous
    // version (e.g. `add r1, r1, r2`) and then carries its own rel bit.
    if (!rename_.try_rename(inst, seq, e.rec, cycle_)) {
      ros_.truncate_after(seq - 1);
      ++*ctr_.free_list_empty;
      return;
    }
    if (inst.is_mem()) {
      lsq_.push(seq, inst.is_store(), inst.mem_bytes());
      e.in_lsq = true;
    }
    e.predicted_taken = fi.predicted_taken;
    e.predicted_target = fi.predicted_target;
    e.ghr_checkpoint = fi.ghr_checkpoint;
    e.ras_checkpoint = fi.ras_checkpoint;
    if (needs_checkpoint) {
      e.has_checkpoint = true;
      rename_.note_branch_decoded(seq);
      pending_branches_.push_back(seq);
    }
    schedule_issue(e);
    if (has_probes_) {
      const sim::RenameEvent ev{seq, e.pc, &e.inst, &e.rec, cycle_};
      for (sim::Probe* probe : probes_) probe->on_rename(ev);
    }
    fetch_.pop_front();  // frees the buffer slot `fi`/`inst` point into
    ++dispatched;
    if (e.inst.is_halt()) return;  // nothing younger dispatches past a HALT
  }
}

void Core::execute(RosEntry& e) {
  const DecodedInst& inst = e.inst;
  const core::RenameRec& rec = e.rec;
  const std::uint64_t a =
      rec.c1 != RegClass::None ? operand_value(rec.c1, rec.p1) : 0;
  const std::uint64_t b =
      rec.c2 != RegClass::None ? operand_value(rec.c2, rec.p2) : 0;
  const unsigned latency = inst.info().latency;

  if (inst.op == Opcode::ILLEGAL || inst.is_halt() || inst.is_iret()) {
    // Control-state instructions carry no operands and take effect at
    // commit (IRET redirects via exception_flush there).
    completions_.schedule(cycle_ + 1, e.seq, e.uid);
    return;
  }
  if (inst.is_mem()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    const bool misaligned = addr % inst.mem_bytes() != 0;
    if (misaligned) e.fault = true;
    lsq_.set_address(e.seq, addr, misaligned);
    if (inst.is_store()) {
      if (rename_.rf(core::rc_from(rec.c2)).ready[rec.p2]) {
        lsq_.set_store_data(e.seq, b);
        completions_.schedule(cycle_ + latency, e.seq, e.uid);
      } else {
        pending_stores_.push_back({e.seq, e.uid});
      }
    } else {
      pending_loads_.push_back({e.seq, e.uid});  // the memory phase takes over
    }
    return;
  }
  if (inst.is_cond_branch()) {
    e.actual_taken = isa::branch_taken(inst.op, a, b);
    e.actual_target =
        e.actual_taken
            ? e.pc + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4)
            : e.pc + 4;
    completions_.schedule(cycle_ + latency, e.seq, e.uid);
    return;
  }
  if (inst.is_indirect_jump()) {
    e.actual_taken = true;
    e.actual_target =
        (a + static_cast<std::uint64_t>(std::int64_t{inst.imm})) &
        ~std::uint64_t{3};
    e.result = e.pc + 4;
    e.has_result = true;
    completions_.schedule(cycle_ + latency, e.seq, e.uid);
    return;
  }
  if (inst.is_direct_jump()) {
    e.result = e.pc + 4;
    e.has_result = true;
    completions_.schedule(cycle_ + latency, e.seq, e.uid);
    return;
  }
  e.result = isa::exec_alu(inst.op, a, b, inst.imm);
  e.has_result = true;
  completions_.schedule(cycle_ + latency, e.seq, e.uid);
}

void Core::phase_issue() {
  // Only ready-queue members are considered: same candidate set the old
  // full-ROS scan found (every transition into readiness funnels through
  // schedule_issue / wake_consumers), considered in the same oldest-first
  // order, so issue decisions are bit-identical — at a cost proportional to
  // the ready work, not the ROS size.
  std::vector<SchedTag>& ready = scheduler_.ready();
  if (ready.empty()) return;
  fu_pool_.begin_cycle(cycle_);
  std::sort(ready.begin(), ready.end(),
            [](const SchedTag& a, const SchedTag& b) { return a.seq < b.seq; });
  unsigned issued = 0;
  std::size_t keep = 0;
  std::size_t i = 0;
  for (; i < ready.size() && issued < config_.issue_width; ++i) {
    const SchedTag tag = ready[i];
    RosEntry* entry = live_entry(tag.seq, tag.uid);
    EREL_CHECK(entry != nullptr && entry->state == EntryState::Dispatched &&
                   entry->sched == SchedResidence::Ready,
               "stale ready-queue tag for seq ", tag.seq);
    RosEntry& e = *entry;
    if (!operands_ready(e)) {
      // An operand's register was released early and reallocated to a
      // younger definer since this entry became ready: park it again.
      e.sched = SchedResidence::None;
      schedule_issue(e);
      continue;
    }
    if (e.dispatch_cycle >= cycle_) {  // issue earliest next cycle
      ready[keep++] = tag;
      continue;
    }
    const isa::OpInfo& info = e.inst.info();
    if (!fu_pool_.try_issue(info.fu, cycle_, info.latency)) {
      ready[keep++] = tag;  // stays ready; retried next cycle
      continue;
    }
    e.state = EntryState::Issued;
    e.sched = SchedResidence::None;
    e.issue_cycle = cycle_;
    execute(e);
    ++issued;
  }
  for (; i < ready.size(); ++i) ready[keep++] = ready[i];  // past issue width
  ready.resize(keep);
}

void Core::phase_memory() {
  // Stores waiting for their data: capture it the cycle it becomes ready.
  for (std::size_t i = 0; i < pending_stores_.size();) {
    const InstSeq seq = pending_stores_[i].seq;
    RosEntry* entry = live_entry(seq, pending_stores_[i].uid);
    if (entry == nullptr) {  // squashed
      pending_stores_.erase(pending_stores_.begin() +
                            static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const core::RenameRec& rec = entry->rec;
    if (!rename_.rf(core::rc_from(rec.c2)).ready[rec.p2]) {
      ++i;
      continue;
    }
    lsq_.set_store_data(seq, operand_value(rec.c2, rec.p2));
    completions_.schedule(cycle_ + 1, seq, entry->uid);
    pending_stores_.erase(pending_stores_.begin() +
                          static_cast<std::ptrdiff_t>(i));
  }
  for (std::size_t i = 0; i < pending_loads_.size();) {
    const InstSeq seq = pending_loads_[i].seq;
    RosEntry* entry = live_entry(seq, pending_loads_[i].uid);
    if (entry == nullptr) {  // squashed
      pending_loads_.erase(pending_loads_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      continue;
    }
    RosEntry& e = *entry;
    if (!e.fault && dev::Machine::is_mmio(lsq_.get(seq).addr)) {
      // Device loads are uncached, side-effect-free reads that execute only
      // at the retirement head: the head is provably correct-path (an older
      // mispredicted branch must resolve before leaving the ROS), all older
      // stores have committed (no LSQ forwarding to consider), and the
      // retirement boundary is frozen while the load sits at the head, so
      // the value matches the functional oracle's exactly.
      if (seq != ros_.head_seq()) {
        ++i;  // wrong-path or not yet oldest: wait (squash or head arrival)
        continue;
      }
      const LsqEntry& le = lsq_.get(seq);
      const std::uint64_t raw =
          dev_.read(le.addr, le.size, icount_base_ + committed_);
      e.result = finish_load_value(e.inst.op, raw);
      e.has_result = true;
      completions_.schedule(cycle_ + dev::Machine::kMmioLatency, seq, e.uid);
      pending_loads_.erase(pending_loads_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      continue;
    }
    std::uint64_t forwarded = 0;
    const LoadStatus status = lsq_.query_load(seq, &forwarded);
    if (status == LoadStatus::Wait) {
      ++i;
      continue;
    }
    if (status == LoadStatus::Forward) {
      e.result = finish_load_value(e.inst.op, forwarded);
      e.has_result = true;
      completions_.schedule(cycle_ + 1, seq, e.uid);
    } else {  // Memory
      if (e.fault) {
        // Misaligned (wrong-path) load: deliver a dead zero; a committed
        // fault aborts in phase_commit.
        e.result = 0;
        e.has_result = true;
        completions_.schedule(cycle_ + 1, seq, e.uid);
      } else {
        const LsqEntry& le = lsq_.get(seq);
        const unsigned latency = hierarchy_.dload(le.addr);
        if (has_probes_) {
          const sim::CacheAccessEvent ev{le.addr, /*is_write=*/false, latency,
                                         cycle_};
          for (sim::Probe* probe : probes_) probe->on_cache_access(ev);
        }
        const std::uint64_t raw = mem_.read(le.addr, le.size);
        e.result = finish_load_value(e.inst.op, raw);
        e.has_result = true;
        completions_.schedule(cycle_ + latency, seq, e.uid);
      }
    }
    pending_loads_.erase(pending_loads_.begin() +
                         static_cast<std::ptrdiff_t>(i));
  }
}

void Core::resolve_branch(RosEntry& e) {
  const bool is_cond = e.inst.is_cond_branch();
  const bool mispredicted = e.actual_target != e.predicted_target;
  if (is_cond) {
    ++*ctr_.cond_branches;
    if (mispredicted) ++*ctr_.cond_mispredicts;
    gshare_.resolve(e.pc, e.ghr_checkpoint, e.actual_taken, mispredicted);
  } else {
    ++*ctr_.indirect_jumps;
    if (mispredicted) ++*ctr_.indirect_mispredicts;
    btb_.update(e.pc, e.actual_target);
  }
  if (has_probes_) {
    const sim::BranchEvent ev{e.pc,    e.actual_target, is_cond,
                              e.actual_taken, mispredicted, cycle_};
    for (sim::Probe* probe : probes_) probe->on_branch_resolve(ev);
  }

  if (!mispredicted) {
    const auto it = std::find(pending_branches_.begin(),
                              pending_branches_.end(), e.seq);
    EREL_CHECK(it != pending_branches_.end());
    pending_branches_.erase(it);
    rename_.on_branch_confirmed(e.seq, cycle_);
    return;
  }

  // Misprediction: squash younger instructions, repair predictors, restore
  // rename state, redirect fetch.
  squash_after(e.seq);
  // A branch can itself be the LU instruction of a register version (it
  // reads sources). Any early-release bit on it was scheduled by an NV
  // younger than the branch — squashed just now — so the scheduling must be
  // undone with it (the restored map still holds those versions).
  e.rec.rel_bits = 0;
  if (is_cond) {
    gshare_.repair(e.ghr_checkpoint, e.actual_taken);
  } else {
    gshare_.restore_history(e.ghr_checkpoint);
  }
  ras_.restore(e.ras_checkpoint);
  while (!pending_branches_.empty() && pending_branches_.back() >= e.seq)
    pending_branches_.pop_back();
  rename_.on_branch_mispredicted(e.seq);
  fetch_.redirect(e.actual_target);
}

void Core::complete(RosEntry& e) {
  e.state = EntryState::Completed;
  e.complete_cycle = cycle_;
  if (e.rec.has_dst()) {
    EREL_CHECK(e.has_result, "destination with no result at pc ", e.pc);
    rename_.rf(core::rc_from(e.rec.cd))
        .write_value(e.rec.pd, e.result, cycle_);
    // The wakeup replaces the scan's polling: consumers parked on pd see
    // the new value at this cycle's issue phase, exactly when the old
    // every-cycle readiness scan would have.
    wake_consumers(core::rc_from(e.rec.cd), e.rec.pd);
  }
  if (e.is_cond_or_indirect()) resolve_branch(e);
}

void Core::phase_writeback() {
  while (completions_.has_due(cycle_)) {
    const CompletionEvent ev = completions_.pop();
    RosEntry* entry = live_entry(ev.seq, ev.uid);
    if (entry == nullptr) continue;  // squashed since scheduling
    RosEntry& e = *entry;
    if (e.state != EntryState::Issued) continue;
    complete(e);
    // complete() may squash (mispredict) — the lazy contains() checks above
    // keep subsequent stale events harmless.
  }
}

void Core::phase_commit() {
  unsigned committed_now = 0;
  while (committed_now < config_.commit_width && !ros_.empty()) {
    RosEntry& e = ros_.head();

    // Retirement-boundary interrupt delivery, before the head executes
    // architecturally: `committed_` older instructions have retired and the
    // head is the oldest correct-path instruction, so EPC = head pc mirrors
    // ArchState::step's check at the same boundary. The flush squashes the
    // head and everything younger — genuine wrong-path work the release
    // policies must roll back (map table, free list, LUsT, release queue).
    if (!dev_.quiet()) {
      dev_.sync(icount_base_ + committed_);
      if (dev_.deliverable()) {
        const std::uint64_t vec = dev_.deliver(e.pc);
        exception_flush(vec);
        return;
      }
    }

    if (e.state != EntryState::Completed) break;

    // Injected exception: flush everything (including the head) and
    // re-execute from the head's PC — the §4.3 recovery path.
    if (next_flush_at_ != 0 && committed_ >= next_flush_at_ &&
        e.seq != last_flushed_seq_) {
      last_flushed_seq_ = e.seq;
      next_flush_at_ = committed_ + config_.flush_period;
      ++*ctr_.flushes_injected;
      exception_flush(e.pc);
      return;
    }

    if (e.inst.is_halt()) {
      halted_ = true;
      return;  // HALT never retires; the machine stops here
    }
    EREL_CHECK(!e.fault, "committed faulting instruction at pc ", e.pc,
               " (illegal opcode or misaligned access)");

    const LsqEntry* mem_entry = nullptr;
    LsqEntry popped;
    if (e.inst.is_mem()) {
      popped = lsq_.pop_commit(e.seq);
      mem_entry = &popped;
    }
    if (oracle_) check_oracle(e, mem_entry);
    if (e.inst.is_store()) {
      if (dev::Machine::is_mmio(popped.addr)) {
        // Device stores take effect at retirement (uncached, no hierarchy
        // traffic): the same boundary the oracle replayed them at.
        dev_.write(popped.addr, popped.data, popped.size,
                   icount_base_ + committed_);
      } else {
        if (decoded_ != nullptr &&
            decoded_->covers(popped.addr, popped.size)) {
          // Committed store into the code image: the pre-decoded records
          // are stale from here on, so fetch reverts to byte-accurate
          // decode (the oracle notices the same store itself when it
          // replays it).
          fetch_.set_decoded(nullptr);
        }
        mem_.write(popped.addr, popped.data, popped.size);
        const unsigned latency =
            hierarchy_.dstore(popped.addr);  // commit-time D-cache update
        if (has_probes_) {
          const sim::CacheAccessEvent ev{popped.addr, /*is_write=*/true,
                                         latency, cycle_};
          for (sim::Probe* probe : probes_) probe->on_cache_access(ev);
        }
      }
    }
    rename_.on_commit(e.rec, e.seq, cycle_);
    if (has_probes_) {
      const sim::CommitEvent ev{e.seq,          e.pc,
                                isa::encode(e.inst), e.dispatch_cycle,
                                e.issue_cycle,  e.complete_cycle,
                                cycle_,         &e.inst,
                                &e.rec};
      for (sim::Probe* probe : probes_) probe->on_commit(ev);
    }
    const bool was_iret = e.inst.is_iret();
    ros_.pop_head();
    ++committed_;
    ++committed_now;
    last_commit_cycle_ = cycle_;
    if (was_iret) {
      // IRET retires like any instruction, then redirects to the saved EPC
      // and squashes the younger sequential-path instructions behind it —
      // they were fetched down the fall-through and are genuinely
      // wrong-path (the oracle redirects itself when it replays the IRET).
      exception_flush(dev_.iret());
      return;
    }
  }
}

void Core::check_oracle(const RosEntry& e, const LsqEntry* mem_entry) {
  const arch::StepInfo s = oracle_->step();
  EREL_CHECK(s.pc == e.pc, "oracle divergence: committed pc ", e.pc,
             " but oracle at ", s.pc, " (seq ", e.seq, ")");
  if (e.rec.has_dst()) {
    EREL_CHECK(s.has_dst);
    const std::uint64_t got =
        rename_.rf(core::rc_from(e.rec.cd)).value.at(e.rec.pd);
    EREL_CHECK(got == s.dst_value, "oracle divergence at pc ", e.pc,
               ": dest value ", got, " != ", s.dst_value);
  }
  if (e.inst.is_store()) {
    EREL_CHECK(mem_entry != nullptr && s.is_store);
    EREL_CHECK(mem_entry->addr == s.mem_addr && mem_entry->data == s.store_value,
               "oracle divergence at store pc ", e.pc);
  }
  if (e.inst.is_load()) {
    EREL_CHECK(mem_entry != nullptr && s.is_load);
    EREL_CHECK(mem_entry->addr == s.mem_addr, "oracle divergence at load pc ",
               e.pc);
  }
}

void Core::squash_after(InstSeq boundary) {
  const InstSeq tail = ros_.tail_seq();
  reuse_wakes_.clear();
  for (InstSeq seq = tail; seq-- > boundary + 1;) {
    RosEntry& e = ros_.at(seq);
    // A squashed reuse restores the previous version's ready bit (see
    // RenameUnit::on_squash_entry) with no writeback to wake on — collect
    // the register so surviving consumers parked on it are re-woken below.
    if (e.rec.has_dst() && e.rec.reused_prev)
      reuse_wakes_.emplace_back(core::rc_from(e.rec.cd), e.rec.pd);
    rename_.on_squash_entry(e.rec, cycle_);
    if (e.rec.has_dst() && !e.rec.reused_prev)
      ++*ctr_.squash_released[static_cast<unsigned>(core::rc_from(e.rec.cd))];
  }
  ros_.truncate_after(boundary);
  lsq_.squash_after(boundary);
  // Squashed tags leave the scheduler eagerly (before the reuse wakeups, so
  // only survivors are woken); completion events stay and die on the lazy
  // uid check in phase_writeback.
  scheduler_.squash_after(boundary);
  for (const auto& [cls, reg] : reuse_wakes_) wake_consumers(cls, reg);
  std::erase_if(pending_loads_, [boundary](const SchedTag& ev) {
    return ev.seq > boundary;
  });
  std::erase_if(pending_stores_, [boundary](const SchedTag& ev) {
    return ev.seq > boundary;
  });
  if (has_probes_ && tail > boundary + 1) {
    const sim::SquashEvent ev{boundary, tail - (boundary + 1), cycle_};
    for (sim::Probe* probe : probes_) probe->on_squash(ev);
  }
}

void Core::exception_flush(std::uint64_t resume_pc) {
  const std::uint64_t flushed = ros_.tail_seq() - ros_.head_seq();
  for (InstSeq seq = ros_.tail_seq(); seq-- > ros_.head_seq();) {
    rename_.on_squash_entry(ros_.at(seq).rec, cycle_);
  }
  if (has_probes_) {
    const sim::SquashEvent ev{core::kNoSeq, flushed, cycle_};
    for (sim::Probe* probe : probes_) probe->on_squash(ev);
  }
  ros_.clear();
  lsq_.clear();
  pending_loads_.clear();
  pending_stores_.clear();
  pending_branches_.clear();
  scheduler_.clear();
  completions_.clear();
  rename_.on_exception_flush(cycle_);
  fetch_.redirect(resume_pc);
}

void Core::tick() {
  ++cycle_;
  phase_commit();
  if (!halted_) {
    phase_writeback();
    phase_memory();
    phase_issue();
    phase_dispatch();
    phase_fetch();

    // Deadlock watchdog: with a non-empty pipeline something must commit
    // within a bounded window (longest chain: FP div + L2 misses).
    if (!ros_.empty() && cycle_ - last_commit_cycle_ > 20000) {
      EREL_FATAL("no commit for 20000 cycles at cycle ", cycle_, ", head pc ",
                 ros_.head().pc, " state ",
                 static_cast<int>(ros_.head().state));
    }
  }

  if (chan_commits_ != nullptr && cycle_ % config_.stat_stride == 0) {
    chan_commits_->push(
        static_cast<double>(committed_ - chan_committed_at_stride_));
    chan_committed_at_stride_ = committed_;
  }
  if (has_probes_) {
    const sim::CycleEvent ev{cycle_};
    for (sim::Probe* probe : probes_) probe->on_cycle(ev);
  }
}

void Core::finish_registry() {
  registry_.counter(sim::kStatCycles).value = cycle_;
  registry_.counter(sim::kStatCommitted).value = committed_;
  registry_.counter(sim::kStatHalted).value = halted_ ? 1 : 0;
  registry_.counter(sim::kStatIcacheStalls).value =
      fetch_.icache_stall_cycles();

  for (unsigned c = 0; c < core::kNumClasses; ++c) {
    const auto cls = static_cast<RC>(c);
    // Leaf names come from the shared tables (sim/stat_registry.hpp), so
    // the publisher and the SimStats view can never drift apart.
    const std::string base =
        std::string(sim::kStatPolicyPrefix) + '/' +
        std::string(sim::stat_class_name(c)) + '/';
    const core::PolicyStats& ps = rename_.policy(cls).stats();
    for (const sim::PolicyStatsField& f : sim::policy_stats_fields())
      registry_.counter(base + std::string(f.leaf)).value = ps.*f.member;

    core::RegTracker& tracker = rename_.rf(cls).tracker;
    tracker.finalize(cycle_);
    const std::string rf =
        std::string(sim::kStatRegfilePrefix) + '/' +
        std::string(sim::stat_class_name(c)) + '/';
    const double integrals[3] = {tracker.empty_integral(),
                                 tracker.ready_integral(),
                                 tracker.idle_integral()};
    for (unsigned i = 0; i < 3; ++i)
      registry_.accum(rf + std::string(sim::kStatOccIntegralLeaves[i]))
          .value = integrals[i];

    if (config_.stat_stride != 0) {
      // Per-stride occupancy: bins hold register-cycles; dividing by the
      // cycles each bucket actually covers (the last one may be partial)
      // yields the average register count in that state over the bucket.
      const std::uint64_t stride = config_.stat_stride;
      const std::uint64_t buckets = (cycle_ + stride - 1) / stride;
      const std::string chan = std::string(sim::kChannelPrefix) +
                               "/occupancy/" +
                               std::string(sim::stat_class_name(c)) + '/';
      const std::vector<double>* const bins[3] = {&tracker.channel_empty(),
                                                  &tracker.channel_ready(),
                                                  &tracker.channel_idle()};
      const char* const leaf[3] = {"empty", "ready", "idle"};
      for (unsigned s = 0; s < 3; ++s) {
        sim::StatRegistry::TimeSeries& ts =
            registry_.channel(chan + leaf[s], stride);
        for (std::uint64_t k = 0; k < buckets; ++k) {
          const double covered = static_cast<double>(
              std::min(stride, cycle_ - k * stride));
          const double sum = k < bins[s]->size() ? (*bins[s])[k] : 0.0;
          ts.push(covered == 0.0 ? 0.0 : sum / covered);
        }
      }
    }
  }

  const auto publish_cache = [this](const char* name,
                                    const mem::CacheStats& cs) {
    const std::string base =
        std::string(sim::kStatCachePrefix) + '/' + name + '/';
    for (const sim::CacheStatsField& f : sim::cache_stats_fields())
      registry_.counter(base + std::string(f.leaf)).value = cs.*f.member;
  };
  publish_cache("l1i", hierarchy_.l1i().stats());
  publish_cache("l1d", hierarchy_.l1d().stats());
  publish_cache("l2", hierarchy_.l2().stats());

  // Flush the partial tail of the commit channel so the points cover the
  // whole run.
  if (chan_commits_ != nullptr && cycle_ % config_.stat_stride != 0) {
    chan_commits_->push(
        static_cast<double>(committed_ - chan_committed_at_stride_));
    chan_committed_at_stride_ = committed_;
  }
}

sim::SimStats Core::run() {
  while (!halted_ && cycle_ < config_.max_cycles &&
         (config_.max_instructions == 0 ||
          committed_ < config_.max_instructions)) {
    tick();
  }
  finish_registry();
  for (sim::Probe* probe : probes_) probe->on_run_end(registry_);
  return sim::materialize_sim_stats(registry_);
}

std::uint64_t Core::arch_reg(RC cls, unsigned logical, bool* stale) const {
  const core::Mapping& m = rename_.rf(cls).iomt.get(logical);
  if (stale != nullptr) *stale = m.stale;
  return rename_.rf(cls).value.at(m.phys);
}

bool Core::conservation_holds() const {
  for (unsigned c = 0; c < core::kNumClasses; ++c) {
    const auto& rf = rename_.rf(static_cast<RC>(c));
    if (rf.free_list.size() + rf.tracker.allocated_count() != rf.num_phys)
      return false;
  }
  return true;
}

}  // namespace erel::pipeline
