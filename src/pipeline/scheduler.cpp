#include "pipeline/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace erel::pipeline {

IssueScheduler::IssueScheduler(unsigned phys_int, unsigned phys_fp)
    : phys_int_(phys_int), lists_(phys_int + phys_fp) {}

std::size_t IssueScheduler::index(core::RC cls, core::PhysReg reg) const {
  const std::size_t base = cls == core::RC::Int ? 0 : phys_int_;
  const std::size_t i = base + reg;
  EREL_CHECK(i < lists_.size(), "wakeup list index out of range: reg ", reg);
  return i;
}

void IssueScheduler::park(core::RC cls, core::PhysReg reg, SchedTag tag) {
  lists_[index(cls, reg)].push_back(tag);
  ++waiters_;
}

void IssueScheduler::make_ready(SchedTag tag) { ready_.push_back(tag); }

void IssueScheduler::wake(core::RC cls, core::PhysReg reg,
                          std::vector<SchedTag>& out) {
  std::vector<SchedTag>& list = lists_[index(cls, reg)];
  if (list.empty()) return;
  out.insert(out.end(), list.begin(), list.end());
  waiters_ -= list.size();
  list.clear();
}

void IssueScheduler::squash_after(core::InstSeq boundary) {
  std::erase_if(ready_,
                [boundary](const SchedTag& t) { return t.seq > boundary; });
  if (waiters_ == 0) return;
  for (std::vector<SchedTag>& list : lists_) {
    if (list.empty()) continue;
    const std::size_t before = list.size();
    std::erase_if(list,
                  [boundary](const SchedTag& t) { return t.seq > boundary; });
    waiters_ -= before - list.size();
  }
}

void IssueScheduler::clear() {
  ready_.clear();
  if (waiters_ == 0) return;
  for (std::vector<SchedTag>& list : lists_) list.clear();
  waiters_ = 0;
}

std::size_t IssueScheduler::waiter_count(core::RC cls,
                                         core::PhysReg reg) const {
  return lists_[index(cls, reg)].size();
}

}  // namespace erel::pipeline
