// Reorder Structure (ROS): a FIFO over all uncommitted instructions,
// addressed by monotone sequence number (paper §2: "a ROS address can be
// used as a unique instruction identifier"; slot == seq % capacity). The
// simulator follows SimpleScalar's RUU organization: ROS entries double as
// the issue window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "isa/isa.hpp"

#include "branch/ras.hpp"

namespace erel::pipeline {

/// Execution status of one ROS entry.
enum class EntryState : std::uint8_t {
  Dispatched,  // renamed, waiting for operands / FU
  Issued,      // executing (or load waiting in the memory stage)
  Completed,   // result written back; eligible for commit
};

struct RosEntry {
  core::InstSeq seq = core::kNoSeq;
  // Sequence numbers are reused after squashes (the ROS slot is seq %
  // capacity); the uid is globally unique and guards event-queue lookups
  // against aliasing with a squashed predecessor.
  std::uint64_t uid = 0;
  std::uint64_t pc = 0;
  isa::DecodedInst inst;
  core::RenameRec rec;
  EntryState state = EntryState::Dispatched;

  // Branch bookkeeping (conditional branches and indirect jumps).
  bool has_checkpoint = false;
  bool predicted_taken = false;
  std::uint64_t predicted_target = 0;
  std::uint32_t ghr_checkpoint = 0;
  branch::Ras::Checkpoint ras_checkpoint;

  // Execution results, staged at issue and applied at writeback.
  std::uint64_t result = 0;
  bool has_result = false;
  bool actual_taken = false;
  std::uint64_t actual_target = 0;
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t issue_cycle = 0;
  std::uint64_t complete_cycle = 0;

  // Memory bookkeeping.
  bool in_lsq = false;
  bool mem_issued = false;  // D-cache access already charged

  // A committed fault (misaligned access / illegal opcode) aborts the run;
  // wrong-path faults are squashed harmlessly.
  bool fault = false;

  [[nodiscard]] bool is_cond_or_indirect() const {
    return inst.is_cond_branch() || inst.is_indirect_jump();
  }
};

class Ros {
 public:
  explicit Ros(unsigned capacity);

  [[nodiscard]] bool full() const { return tail_ - head_ >= capacity_; }
  [[nodiscard]] bool empty() const { return tail_ == head_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_ - head_);
  }
  [[nodiscard]] unsigned capacity() const { return capacity_; }

  [[nodiscard]] core::InstSeq head_seq() const { return head_; }
  [[nodiscard]] core::InstSeq tail_seq() const { return tail_; }

  /// Appends a new entry and returns it (seq assigned by the caller must be
  /// the current tail sequence).
  RosEntry& push(core::InstSeq seq);

  /// Entry lookup; aborts if `seq` is not in [head, tail).
  RosEntry& at(core::InstSeq seq);
  const RosEntry& at(core::InstSeq seq) const;

  /// True if `seq` denotes an uncommitted, unsquashed instruction.
  [[nodiscard]] bool contains(core::InstSeq seq) const {
    return seq >= head_ && seq < tail_;
  }

  [[nodiscard]] RosEntry& head() { return at(head_); }

  /// Retires the oldest entry.
  void pop_head();

  /// Squashes every entry younger than `boundary` (exclusive); the caller
  /// iterates first via for_squash() to release registers.
  void truncate_after(core::InstSeq boundary);

  /// Removes every entry (exception flush).
  void clear();

 private:
  unsigned capacity_;
  std::vector<RosEntry> slots_;
  core::InstSeq head_ = 1;  // seq numbers start at 1 (0 = "before everything")
  core::InstSeq tail_ = 1;
};

}  // namespace erel::pipeline
