// Reorder Structure (ROS): a FIFO over all uncommitted instructions,
// addressed by monotone sequence number (paper §2: "a ROS address can be
// used as a unique instruction identifier"). The simulator follows
// SimpleScalar's RUU organization: ROS entries double as the issue window.
// The slot array is rounded up to a power of two so the seq -> slot map is
// a mask; occupancy is still bounded by the configured capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "core/types.hpp"
#include "isa/isa.hpp"

#include "branch/ras.hpp"

namespace erel::pipeline {

/// Execution status of one ROS entry.
enum class EntryState : std::uint8_t {
  Dispatched,  // renamed, waiting for operands / FU
  Issued,      // executing (or load waiting in the memory stage)
  Completed,   // result written back; eligible for commit
};

/// Which issue-scheduler structure currently tracks a Dispatched entry
/// (pipeline/scheduler.hpp; maintained by Core). Exactly one of the two
/// while Dispatched, None from issue onward.
enum class SchedResidence : std::uint8_t {
  None,    // not dispatched yet, or already issued
  Parked,  // on the wakeup list of one not-ready operand register
  Ready,   // in the explicit ready queue
};

struct RosEntry {
  core::InstSeq seq = core::kNoSeq;
  // Sequence numbers are reused after squashes (the ROS slot is seq %
  // capacity); the uid is globally unique and guards event-queue lookups
  // against aliasing with a squashed predecessor.
  std::uint64_t uid = 0;
  std::uint64_t pc = 0;
  isa::DecodedInst inst;
  core::RenameRec rec;
  EntryState state = EntryState::Dispatched;
  SchedResidence sched = SchedResidence::None;

  // Branch bookkeeping (conditional branches and indirect jumps).
  bool has_checkpoint = false;
  bool predicted_taken = false;
  std::uint64_t predicted_target = 0;
  std::uint32_t ghr_checkpoint = 0;
  branch::Ras::Checkpoint ras_checkpoint;

  // Execution results, staged at issue and applied at writeback.
  std::uint64_t result = 0;
  bool has_result = false;
  bool actual_taken = false;
  std::uint64_t actual_target = 0;
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t issue_cycle = 0;
  std::uint64_t complete_cycle = 0;

  // Memory bookkeeping.
  bool in_lsq = false;
  bool mem_issued = false;  // D-cache access already charged

  // A committed fault (misaligned access / illegal opcode) aborts the run;
  // wrong-path faults are squashed harmlessly.
  bool fault = false;

  [[nodiscard]] bool is_cond_or_indirect() const {
    return inst.is_cond_branch() || inst.is_indirect_jump();
  }
};

class Ros {
 public:
  explicit Ros(unsigned capacity);

  [[nodiscard]] bool full() const { return tail_ - head_ >= capacity_; }
  [[nodiscard]] bool empty() const { return tail_ == head_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_ - head_);
  }
  [[nodiscard]] unsigned capacity() const { return capacity_; }

  [[nodiscard]] core::InstSeq head_seq() const { return head_; }
  [[nodiscard]] core::InstSeq tail_seq() const { return tail_; }

  /// Appends a new entry and returns it (seq assigned by the caller must be
  /// the current tail sequence). Inline: push/at are the pipeline's densest
  /// call sites, and the pow2-rounded slot array turns the slot computation
  /// into a mask instead of a division by the configured capacity.
  RosEntry& push(core::InstSeq seq) {
    EREL_CHECK(!full(), "push into full ROS");
    EREL_CHECK(seq == tail_, "sequence discontinuity: ", seq, " vs ", tail_);
    RosEntry& entry = slots_[seq & mask_];
    entry = RosEntry{};
    entry.seq = seq;
    ++tail_;
    return entry;
  }

  /// Entry lookup; aborts if `seq` is not in [head, tail).
  RosEntry& at(core::InstSeq seq) {
    EREL_CHECK(contains(seq), "ROS access to retired/absent seq ", seq);
    RosEntry& entry = slots_[seq & mask_];
    EREL_CHECK(entry.seq == seq);
    return entry;
  }
  const RosEntry& at(core::InstSeq seq) const {
    EREL_CHECK(contains(seq), "ROS access to retired/absent seq ", seq);
    const RosEntry& entry = slots_[seq & mask_];
    EREL_CHECK(entry.seq == seq);
    return entry;
  }

  /// True if `seq` denotes an uncommitted, unsquashed instruction.
  [[nodiscard]] bool contains(core::InstSeq seq) const {
    return seq >= head_ && seq < tail_;
  }

  [[nodiscard]] RosEntry& head() { return at(head_); }

  /// Retires the oldest entry.
  void pop_head() {
    EREL_CHECK(!empty());
    ++head_;
  }

  /// Squashes every entry younger than `boundary` (exclusive); the caller
  /// iterates first via for_squash() to release registers.
  void truncate_after(core::InstSeq boundary) {
    EREL_CHECK(boundary >= head_ - 1 && boundary < tail_);
    tail_ = boundary + 1;
  }

  /// Removes every entry (exception flush).
  void clear() { head_ = tail_; }

 private:
  unsigned capacity_;
  std::vector<RosEntry> slots_;  // pow2-rounded; uniqueness of seq & mask_
                                 // holds because the live window <= capacity
  std::uint64_t mask_ = 0;
  core::InstSeq head_ = 1;  // seq numbers start at 1 (0 = "before everything")
  core::InstSeq tail_ = 1;
};

}  // namespace erel::pipeline
