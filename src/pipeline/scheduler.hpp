// Event-driven issue scheduling: the structures that make per-cycle cost
// scale with work done instead of structure size.
//
// IssueScheduler replaces the full-ROS readiness scan: every Dispatched
// entry lives in exactly one place — parked on the wakeup list of the first
// operand register it found not ready, or in the explicit ready queue. The
// writeback phase wakes the consumers of the register it just wrote; squash
// removes the tags of squashed instructions eagerly, so stale tags never
// survive into an issue cycle. On a cycle where nothing completes and
// nothing is ready, phase_issue touches a single empty vector.
//
// CompletionQueue replaces the unconditional priority-queue walk in the
// writeback phase with a cached next-due gate. Internally it keeps the
// *exact* std::priority_queue the pre-refactor core used: the heap's
// same-cycle pop order determines the order wrong-path branches resolve and
// thus the predictor state every later fetch sees — it is pinned simulator
// behavior (see docs/scheduler.md, "Determinism invariants"), which is why
// a bucketed calendar queue must not replace it.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/types.hpp"

namespace erel::pipeline {

/// Identifies one in-flight instruction. Sequence numbers recycle after a
/// squash (the ROS slot is seq % capacity); the uid disambiguates, exactly
/// as in the completion events.
struct SchedTag {
  core::InstSeq seq = core::kNoSeq;
  std::uint64_t uid = 0;
};

/// One scheduled writeback: instruction `seq`/`uid` completes at `cycle`.
struct CompletionEvent {
  std::uint64_t cycle;
  core::InstSeq seq;
  std::uint64_t uid;  // must match the ROS entry (seqs recycle on squash)
  bool operator>(const CompletionEvent& other) const {
    return cycle > other.cycle;
  }
};

/// Wakeup lists + ready queue. The core owns the policy (what to do with a
/// woken tag); this class owns the bookkeeping invariant: a tag is parked on
/// at most one register, or in the ready queue, never both.
class IssueScheduler {
 public:
  IssueScheduler(unsigned phys_int, unsigned phys_fp);

  /// Parks `tag` on the wakeup list of (cls, reg): it will be handed back
  /// by the wake() for that register.
  void park(core::RC cls, core::PhysReg reg, SchedTag tag);

  /// Appends `tag` to the ready queue.
  void make_ready(SchedTag tag);

  /// Moves every consumer parked on (cls, reg) into `out` (appended; the
  /// caller re-evaluates readiness and either re-parks or readies each).
  void wake(core::RC cls, core::PhysReg reg, std::vector<SchedTag>& out);

  /// Drops every tag with seq > boundary from the ready queue and all
  /// wakeup lists (the squashed instructions' registers are being released;
  /// their wakeups must never fire).
  void squash_after(core::InstSeq boundary);

  /// Exception flush: drops everything.
  void clear();

  /// The ready candidates. phase_issue sorts this by seq (oldest first),
  /// consumes issued entries and keeps FU-blocked ones in place; exposing
  /// the vector keeps that compaction allocation-free.
  [[nodiscard]] std::vector<SchedTag>& ready() { return ready_; }

  // Observers (tests / invariant checks).
  [[nodiscard]] std::size_t ready_count() const { return ready_.size(); }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_; }
  [[nodiscard]] std::size_t waiter_count(core::RC cls,
                                         core::PhysReg reg) const;

 private:
  [[nodiscard]] std::size_t index(core::RC cls, core::PhysReg reg) const;

  unsigned phys_int_;
  std::vector<std::vector<SchedTag>> lists_;  // [int regs | fp regs]
  std::vector<SchedTag> ready_;
  std::size_t waiters_ = 0;  // total parked tags, for cheap idle checks
};

/// Cycle-ordered completion events with an O(1) idle gate.
class CompletionQueue {
 public:
  void schedule(std::uint64_t cycle, core::InstSeq seq, std::uint64_t uid) {
    if (cycle < next_due_) next_due_ = cycle;
    events_.push({cycle, seq, uid});
  }

  /// True when an event is due at `cycle`; idle cycles resolve on the
  /// cached next_due_ without touching the heap.
  [[nodiscard]] bool has_due(std::uint64_t cycle) const {
    return next_due_ <= cycle;
  }

  /// Pops the earliest event (same-cycle ties in heap order — pinned
  /// behavior, see file comment).
  CompletionEvent pop() {
    const CompletionEvent ev = events_.top();
    events_.pop();
    next_due_ = events_.empty() ? kNever : events_.top().cycle;
    return ev;
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }

  void clear() {
    while (!events_.empty()) events_.pop();
    next_due_ = kNever;
  }

 private:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};
  std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                      std::greater<>>
      events_;
  std::uint64_t next_due_ = kNever;
};

}  // namespace erel::pipeline
