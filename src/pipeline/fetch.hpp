// Instruction fetch: 8-wide, up to two fetch blocks (i.e. it can follow one
// taken branch per cycle, paper Table 2: "up to 2 taken branches"),
// predecoded predictions (gshare + BTB + RAS), I-cache latency modelled per
// line touched.
//
// With a DecodedProgram attached, in-image fetches read the pre-decoded
// micro-op record instead of re-decoding memory bytes; wrong-path fetches
// outside the image (and everything after the owning core observes a store
// into the image) take the byte-accurate path, so fetched instructions are
// identical either way.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/decoded_program.hpp"
#include "arch/memory.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "isa/isa.hpp"
#include "mem/hierarchy.hpp"
#include "sim/probe.hpp"

namespace erel::pipeline {

/// One predecoded instruction flowing from fetch to dispatch.
struct FetchedInst {
  std::uint64_t pc = 0;
  isa::DecodedInst inst;
  bool predicted_taken = false;      // control only
  std::uint64_t predicted_target = 0;
  std::uint32_t ghr_checkpoint = 0;  // conditional branches
  branch::Ras::Checkpoint ras_checkpoint;  // cond + indirect
};

struct FetchConfig {
  unsigned width = 8;
  unsigned max_blocks_per_cycle = 2;
  unsigned buffer_capacity = 16;
};

class FetchUnit {
 public:
  FetchUnit(const FetchConfig& config, const arch::SparseMemory& memory,
            mem::MemoryHierarchy& hierarchy, branch::Gshare& gshare,
            branch::Btb& btb, branch::Ras& ras);

  void set_pc(std::uint64_t pc) { pc_ = pc; }

  /// Attaches/detaches the decode-once fast path (non-owning; the core
  /// detaches when a committed store dirties the code image).
  void set_decoded(const arch::DecodedProgram* decoded) { decoded_ = decoded; }

  /// Probe fan-out list for I-side CacheAccessEvents (non-owning; the core
  /// shares its own attach-ordered list). The enable decision is cached in
  /// one flag, so zero-probe runs pay a single predictable branch per line
  /// touched; the core re-notifies after each attach_probe.
  void set_probes(const std::vector<sim::Probe*>* probes) {
    probes_ = probes;
    note_probes_changed();
  }

  /// Re-caches has_probes_ after the shared probe list changed.
  void note_probes_changed() {
    has_probes_ = probes_ != nullptr && !probes_->empty();
  }

  /// Squash recovery: drops buffered instructions and restarts at `pc`.
  void redirect(std::uint64_t pc);

  /// Fetches up to width instructions into the buffer.
  void tick(std::uint64_t cycle);

  [[nodiscard]] bool buffer_empty() const { return buf_size_ == 0; }
  [[nodiscard]] const FetchedInst& front() const {
    return buffer_[buf_head_];
  }
  void pop_front() {
    buf_head_ = (buf_head_ + 1) & buf_mask_;
    --buf_size_;
  }

  [[nodiscard]] std::uint64_t icache_stall_cycles() const {
    return icache_stall_cycles_;
  }

 private:
  /// Predicts one control instruction and applies speculative predictor
  /// updates (GHR shift, RAS push/pop).
  void predict(FetchedInst& fi);

  FetchConfig config_;
  const arch::SparseMemory& memory_;
  mem::MemoryHierarchy& hierarchy_;
  branch::Gshare& gshare_;
  branch::Btb& btb_;
  branch::Ras& ras_;
  const arch::DecodedProgram* decoded_ = nullptr;
  const std::vector<sim::Probe*>* probes_ = nullptr;
  bool has_probes_ = false;  // cached probes_->empty() (see set_probes)

  /// Returns the next free ring slot, cleared; the caller fills it and
  /// commits with ++buf_size_ (fetch runs a few million times per simulated
  /// second, so the buffer is a fixed ring filled in place — no deque node
  /// machinery, no staging copy of FetchedInst).
  FetchedInst& next_slot() {
    FetchedInst& fi = buffer_[(buf_head_ + buf_size_) & buf_mask_];
    fi = FetchedInst{};
    return fi;
  }

  std::vector<FetchedInst> buffer_;  // pow2 ring of buffer_capacity slots
  std::uint32_t buf_head_ = 0;
  std::uint32_t buf_size_ = 0;
  std::uint32_t buf_mask_ = 0;
  std::uint64_t pc_ = 0;
  std::uint64_t icache_ready_cycle_ = 0;  // stalled on an I-cache miss until
  std::uint64_t current_line_ = ~std::uint64_t{0};
  bool halted_ = false;  // saw HALT; stop fetching until redirect
  std::uint64_t icache_stall_cycles_ = 0;
};

}  // namespace erel::pipeline
