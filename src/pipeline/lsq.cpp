#include "pipeline/lsq.hpp"

#include "common/log.hpp"

namespace erel::pipeline {

namespace {

bool ranges_overlap(std::uint64_t a, unsigned a_size, std::uint64_t b,
                    unsigned b_size) {
  return a < b + b_size && b < a + a_size;
}

bool range_covers(std::uint64_t outer, unsigned outer_size, std::uint64_t inner,
                  unsigned inner_size) {
  return outer <= inner && inner + inner_size <= outer + outer_size;
}

}  // namespace

Lsq::Lsq(unsigned capacity) : capacity_(capacity) {
  EREL_CHECK(capacity > 0);
  std::size_t slots = 1;
  while (slots < capacity) slots <<= 1;
  slots_.resize(slots);
  mask_ = static_cast<std::uint32_t>(slots - 1);
}

void Lsq::push(core::InstSeq seq, bool is_store, unsigned size) {
  EREL_CHECK(!full(), "push into full LSQ");
  EREL_CHECK(size_ == 0 || nth(size_ - 1).seq < seq);
  LsqEntry& entry = nth(size_);
  entry = LsqEntry{};
  entry.seq = seq;
  entry.is_store = is_store;
  entry.size = static_cast<std::uint8_t>(size);
  ++size_;
}

const LsqEntry& Lsq::find(core::InstSeq seq) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const LsqEntry& e = nth(i);
    if (e.seq == seq) return e;
  }
  EREL_FATAL("LSQ entry not found for seq ", seq);
}

LsqEntry& Lsq::find(core::InstSeq seq) {
  return const_cast<LsqEntry&>(static_cast<const Lsq*>(this)->find(seq));
}

void Lsq::set_address(core::InstSeq seq, std::uint64_t addr, bool misaligned) {
  LsqEntry& e = find(seq);
  e.addr_known = true;
  e.addr = addr;
  e.misaligned = misaligned;
}

void Lsq::set_store_data(core::InstSeq seq, std::uint64_t data) {
  LsqEntry& e = find(seq);
  EREL_CHECK(e.is_store);
  e.data_ready = true;
  e.data = data;
}

LoadStatus Lsq::query_load(core::InstSeq seq, std::uint64_t* value) const {
  const LsqEntry& load = find(seq);
  EREL_CHECK(!load.is_store && load.addr_known);
  // Scan older stores from youngest to oldest.
  const LsqEntry* covering = nullptr;
  bool any_overlap = false;
  for (std::size_t i = size_; i-- > 0;) {
    const LsqEntry& e = nth(i);
    if (e.seq >= seq) continue;
    if (!e.is_store) continue;
    if (!e.addr_known) return LoadStatus::Wait;  // conservative rule
    if (!ranges_overlap(e.addr, e.size, load.addr, load.size)) continue;
    if (!any_overlap) {
      // Youngest overlapping older store decides.
      any_overlap = true;
      if (range_covers(e.addr, e.size, load.addr, load.size)) covering = &e;
    }
    // Keep scanning: an even older store with an unknown address would have
    // returned Wait above, so completing the loop is just overlap bookkeeping.
  }
  if (!any_overlap) return LoadStatus::Memory;
  if (covering == nullptr) return LoadStatus::Wait;  // partial overlap
  if (!covering->data_ready) return LoadStatus::Wait;
  if (value != nullptr) {
    const unsigned shift =
        static_cast<unsigned>(load.addr - covering->addr) * 8;
    std::uint64_t raw = covering->data >> shift;
    if (load.size < 8) raw &= (std::uint64_t{1} << (load.size * 8)) - 1;
    *value = raw;
  }
  return LoadStatus::Forward;
}

LsqEntry Lsq::pop_commit(core::InstSeq seq) {
  EREL_CHECK(size_ > 0 && nth(0).seq == seq, "commit order violated in LSQ");
  const LsqEntry entry = nth(0);
  head_ = (head_ + 1) & mask_;
  --size_;
  return entry;
}

void Lsq::squash_after(core::InstSeq boundary) {
  while (size_ > 0 && nth(size_ - 1).seq > boundary) --size_;
}

}  // namespace erel::pipeline
