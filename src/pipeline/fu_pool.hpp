// Functional-unit pool with the paper's Table 2 mix:
//   8 simple int (1 cy) | 4 int mult (7 cy; divide 12 cy) | 6 simple FP (4)
//   4 FP mult (4)       | 4 FP div (16, unpipelined)      | 4 load/store
// All units are fully pipelined except the FP divider, whose initiation
// interval equals its latency.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace erel::pipeline {

struct FuConfig {
  unsigned int_alu = 8;
  unsigned int_mul = 4;
  unsigned fp_alu = 6;
  unsigned fp_mul = 4;
  unsigned fp_div = 4;
  unsigned ld_st = 4;
};

class FuPool {
 public:
  explicit FuPool(const FuConfig& config);

  /// Resets the per-cycle issue counters; call once per simulated cycle.
  void begin_cycle(std::uint64_t cycle);

  /// Tries to reserve a unit of `cls` for an op issued at `cycle`. Returns
  /// false when every unit of the class is taken this cycle (or, for the
  /// unpipelined divider, still busy with an earlier op).
  bool try_issue(isa::FuClass cls, std::uint64_t cycle, unsigned latency);

  [[nodiscard]] unsigned count(isa::FuClass cls) const;

 private:
  FuConfig config_;
  std::array<unsigned, isa::kNumFuClasses> issued_this_cycle_{};
  std::vector<std::uint64_t> div_busy_until_;  // per FP-div unit
};

}  // namespace erel::pipeline
