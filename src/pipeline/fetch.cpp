#include "pipeline/fetch.hpp"

namespace erel::pipeline {

FetchUnit::FetchUnit(const FetchConfig& config,
                     const arch::SparseMemory& memory,
                     mem::MemoryHierarchy& hierarchy, branch::Gshare& gshare,
                     branch::Btb& btb, branch::Ras& ras)
    : config_(config),
      memory_(memory),
      hierarchy_(hierarchy),
      gshare_(gshare),
      btb_(btb),
      ras_(ras) {
  std::size_t slots = 1;
  while (slots < config.buffer_capacity) slots <<= 1;
  buffer_.resize(slots);
  buf_mask_ = static_cast<std::uint32_t>(slots - 1);
}

void FetchUnit::redirect(std::uint64_t pc) {
  buf_head_ = 0;
  buf_size_ = 0;
  pc_ = pc;
  halted_ = false;
  // The in-flight I-cache miss (if any) is abandoned.
  icache_ready_cycle_ = 0;
  current_line_ = ~std::uint64_t{0};
}

void FetchUnit::predict(FetchedInst& fi) {
  const isa::DecodedInst& inst = fi.inst;
  const std::uint64_t fallthrough = fi.pc + 4;
  if (inst.is_cond_branch()) {
    fi.ras_checkpoint = ras_.checkpoint();
    fi.predicted_taken = gshare_.predict(fi.pc, &fi.ghr_checkpoint);
    fi.predicted_target =
        fi.predicted_taken
            ? fi.pc + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4)
            : fallthrough;
    return;
  }
  if (inst.is_direct_jump()) {
    // Target computable at predecode: always correct.
    fi.predicted_taken = true;
    fi.predicted_target =
        fi.pc + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
    if (inst.rd == 1) ras_.push(fallthrough);  // call convention: link in ra
    return;
  }
  if (inst.is_indirect_jump()) {
    fi.predicted_taken = true;
    // Indirect jumps do not shift the GHR, but their misprediction must
    // restore it (younger conditional branches shifted it speculatively).
    fi.ghr_checkpoint = gshare_.history();
    const bool is_return = inst.rd == 0 && inst.rs1 == 1;
    if (is_return) {
      fi.predicted_target = ras_.pop();
    } else {
      fi.predicted_target = btb_.lookup(fi.pc).value_or(fallthrough);
    }
    if (inst.rd == 1) ras_.push(fallthrough);
    // Snapshot after this instruction's own RAS operations: misprediction of
    // this jump squashes only younger instructions, whose RAS damage is what
    // the checkpoint must undo.
    fi.ras_checkpoint = ras_.checkpoint();
    return;
  }
}

void FetchUnit::tick(std::uint64_t cycle) {
  if (halted_) return;
  if (cycle < icache_ready_cycle_) {
    ++icache_stall_cycles_;
    return;
  }
  unsigned fetched = 0;
  unsigned blocks = 1;
  const unsigned line_bytes = hierarchy_.l1i().config().line_bytes;
  while (fetched < config_.width && buf_size_ < config_.buffer_capacity) {
    // Charge the I-cache once per line touched.
    const std::uint64_t line = pc_ / line_bytes;
    if (line != current_line_) {
      const unsigned latency = hierarchy_.ifetch(pc_);
      current_line_ = line;
      if (has_probes_) {
        const sim::CacheAccessEvent ev{pc_, /*is_write=*/false, latency,
                                       cycle, /*is_ifetch=*/true};
        for (sim::Probe* probe : *probes_) probe->on_cache_access(ev);
      }
      if (latency > hierarchy_.l1i().config().hit_latency) {
        icache_ready_cycle_ = cycle + latency;
        return;  // miss: deliver nothing this cycle
      }
    }

    FetchedInst& fi = next_slot();
    fi.pc = pc_;
    fi.inst = decoded_ != nullptr && decoded_->contains(pc_)
                  ? decoded_->at(pc_).inst
                  : isa::decode(memory_.read_u32(pc_));
    if (fi.inst.is_halt()) {
      ++buf_size_;
      halted_ = true;
      return;
    }
    if (fi.inst.is_control()) {
      predict(fi);
      ++buf_size_;
      ++fetched;
      if (fi.predicted_taken) {
        if (blocks >= config_.max_blocks_per_cycle) {
          pc_ = fi.predicted_target;
          return;
        }
        ++blocks;
        pc_ = fi.predicted_target;
        continue;
      }
      pc_ += 4;
      continue;
    }
    ++buf_size_;
    ++fetched;
    pc_ += 4;
  }
}

}  // namespace erel::pipeline
