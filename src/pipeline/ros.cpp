#include "pipeline/ros.hpp"

#include "common/log.hpp"

namespace erel::pipeline {

Ros::Ros(unsigned capacity) : capacity_(capacity) {
  EREL_CHECK(capacity > 0);
  std::size_t slots = 1;
  while (slots < capacity) slots <<= 1;
  slots_.resize(slots);
  mask_ = slots - 1;
}

}  // namespace erel::pipeline
