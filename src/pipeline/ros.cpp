#include "pipeline/ros.hpp"

#include "common/log.hpp"

namespace erel::pipeline {

Ros::Ros(unsigned capacity) : capacity_(capacity), slots_(capacity) {
  EREL_CHECK(capacity > 0);
}

RosEntry& Ros::push(core::InstSeq seq) {
  EREL_CHECK(!full(), "push into full ROS");
  EREL_CHECK(seq == tail_, "sequence discontinuity: ", seq, " vs ", tail_);
  RosEntry& entry = slots_[seq % capacity_];
  entry = RosEntry{};
  entry.seq = seq;
  ++tail_;
  return entry;
}

RosEntry& Ros::at(core::InstSeq seq) {
  EREL_CHECK(contains(seq), "ROS access to retired/absent seq ", seq);
  RosEntry& entry = slots_[seq % capacity_];
  EREL_CHECK(entry.seq == seq);
  return entry;
}

const RosEntry& Ros::at(core::InstSeq seq) const {
  EREL_CHECK(contains(seq), "ROS access to retired/absent seq ", seq);
  const RosEntry& entry = slots_[seq % capacity_];
  EREL_CHECK(entry.seq == seq);
  return entry;
}

void Ros::pop_head() {
  EREL_CHECK(!empty());
  ++head_;
}

void Ros::truncate_after(core::InstSeq boundary) {
  EREL_CHECK(boundary >= head_ - 1 && boundary < tail_);
  tail_ = boundary + 1;
}

void Ros::clear() { head_ = tail_; }

}  // namespace erel::pipeline
